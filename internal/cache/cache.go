// Package cache models the cache hierarchy of Table II: split 64KB 8-way
// L1 I/D caches (2-cycle), a unified 2MB 16-way L2 (20-cycle), LRU
// replacement, write-back write-allocate policy, bounded MSHRs and write
// buffers, backed by the DRAM model.
//
// The REST hardware modifications (paper §III-B, Figure 4 and Table I) live
// entirely at the L1 data cache:
//
//   - one token metadata bit per token-width chunk per line (1/2/4 bits for
//     64/32/16-byte tokens), set by the fill-time content detector;
//   - loads and stores that touch a chunk with its token bit set are flagged;
//   - ARM sets the token bit without writing data (the token value is
//     materialized into the outgoing packet on eviction);
//   - DISARM verifies the token bit, zeroes the line (+1 cycle, all banks),
//     and clears the bit; disarming an unarmed line is flagged;
//   - evicted lines with token bits have the token filled into the
//     writeback packet (counted, and for the L2/memory interface reported
//     per kilo-instruction as in §VI-B).
//
// The model is a one-pass latency calculator: each access is presented with
// the current cycle and returns its completion cycle, with MSHR occupancy,
// write-buffer capacity and DRAM bank/bus contention folded in.
package cache

import "fmt"

// LineBytes is the cache line size (Table II: 64B blocks everywhere).
const LineBytes = 64

// TokenSource answers "which chunks of this line currently hold the token?"
// It abstracts the fill-time content detector: the hardware compares line
// data against the token register during the fill; we consult the
// architectural token state, which is equivalent by the content/tracker
// consistency invariant (see core.TokenTracker).
type TokenSource interface {
	LineTokenMask(lineAddr uint64) uint8
	// ChunksPerLine reports how many token chunks one line holds.
	ChunksPerLine() int
}

// Level is a memory level that can service 64B line fills/writebacks.
type Level interface {
	// Access starts a line read or writeback at cycle now and returns its
	// completion cycle.
	Access(now uint64, lineAddr uint64, write bool) uint64
}

// Config sizes one cache.
type Config struct {
	Name        string
	SizeBytes   int
	Ways        int
	HitCycles   uint64
	MSHRs       int // max distinct outstanding misses
	WriteBuf    int // write buffer entries (0 = no write buffer modelling)
	RESTEnabled bool
}

// Stats aggregates cache event counts.
type Stats struct {
	SnoopStats

	Accesses     uint64
	Hits         uint64
	Misses       uint64
	MergedMisses uint64 // misses merged into an in-flight MSHR
	Evictions    uint64
	Writebacks   uint64
	TokenFills   uint64 // fills where the detector found token chunks
	TokenEvicts  uint64 // evictions carrying token chunks
	TokenHits    uint64 // regular accesses that touched a token chunk
	DisarmZeroes uint64 // disarm line-zero operations (+1 cycle each)
	MSHRStalls   uint64
	WBufStalls   uint64
}

type cline struct {
	tag       uint64
	valid     bool
	dirty     bool
	shared    bool // a peer cache may hold a copy (MSI coherence)
	lastUse   uint64
	tokenMask uint8
}

// Cache is one set-associative write-back cache level.
type Cache struct {
	cfg      Config
	setShift uint
	setMask  uint64
	sets     [][]cline
	next     Level
	tokens   TokenSource // nil when REST disabled or no tracker
	useTick  uint64

	// mshr holds the outstanding misses as a small bounded slice (at most
	// cfg.MSHRs live entries, a handful in Table II's configuration):
	// completed entries are pruned on every admit, so the structure never
	// grows with run length, and the linear scan beats hashing a map key on
	// every fill.
	mshr []mshrEntry
	wbuf []uint64 // completion cycles of outstanding writebacks

	group *snoopGroup // nil on single-core machines

	// OnTokenEvict, when non-nil, observes every eviction of a line whose
	// token mask is set, after the token value has been filled into the
	// outgoing packet (Table I, Eviction row). The fault-injection plane
	// hooks it to corrupt the writeback in flight (token-bit loss on L1-D
	// eviction, §V-B); it must never be set on measurement runs.
	OnTokenEvict func(lineAddr uint64, mask uint8)

	Stats Stats
}

// New builds a cache over the given lower level.
func New(cfg Config, next Level, tokens TokenSource) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache %s: bad geometry %d/%d", cfg.Name, cfg.SizeBytes, cfg.Ways)
	}
	nLines := cfg.SizeBytes / LineBytes
	nSets := nLines / cfg.Ways
	if nSets == 0 || nSets&(nSets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two", cfg.Name, nSets)
	}
	if cfg.MSHRs == 0 {
		cfg.MSHRs = 4
	}
	c := &Cache{
		cfg:      cfg,
		setShift: 6,
		setMask:  uint64(nSets - 1),
		sets:     make([][]cline, nSets),
		next:     next,
		mshr:     make([]mshrEntry, 0, cfg.MSHRs),
	}
	if cfg.RESTEnabled {
		c.tokens = tokens
	}
	for i := range c.sets {
		c.sets[i] = make([]cline, cfg.Ways)
	}
	return c, nil
}

// ReleaseTokenSource drops the token-source reference. Only valid once the
// cache will receive no further accesses: the fill-time detector consults
// the source on every REST-enabled access.
func (c *Cache) ReleaseTokenSource() { c.tokens = nil }

func (c *Cache) setIndex(lineAddr uint64) uint64 {
	return (lineAddr >> c.setShift) & c.setMask
}

// lookup returns the way holding lineAddr, or nil.
func (c *Cache) lookup(lineAddr uint64) *cline {
	set := c.sets[c.setIndex(lineAddr)]
	tag := lineAddr >> c.setShift
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// victim picks the LRU way in the set of lineAddr.
func (c *Cache) victim(lineAddr uint64) *cline {
	set := c.sets[c.setIndex(lineAddr)]
	v := &set[0]
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
		if set[i].lastUse < v.lastUse {
			v = &set[i]
		}
	}
	return v
}

func (c *Cache) touch(l *cline) {
	c.useTick++
	l.lastUse = c.useTick
}

// mshrEntry is one outstanding miss: the line being filled and the cycle the
// fill completes.
type mshrEntry struct {
	addr  uint64
	ready uint64
}

// mshrFind returns the outstanding entry for lineAddr, or nil. Entries are
// unique per line address (mshrSet updates in place).
func (c *Cache) mshrFind(lineAddr uint64) *mshrEntry {
	for i := range c.mshr {
		if c.mshr[i].addr == lineAddr {
			return &c.mshr[i]
		}
	}
	return nil
}

// mshrSet records lineAddr's fill completion, reusing the line's existing
// entry if one is still tracked.
func (c *Cache) mshrSet(lineAddr, ready uint64) {
	if e := c.mshrFind(lineAddr); e != nil {
		e.ready = ready
		return
	}
	c.mshr = append(c.mshr, mshrEntry{addr: lineAddr, ready: ready})
}

// reapMSHRs prunes completed entries in place.
func (c *Cache) reapMSHRs(now uint64) {
	live := c.mshr[:0]
	for _, e := range c.mshr {
		if e.ready > now {
			live = append(live, e)
		}
	}
	c.mshr = live
}

// mshrAdmit blocks until an MSHR slot is free and returns the (possibly
// advanced) current cycle.
func (c *Cache) mshrAdmit(now uint64) uint64 {
	c.reapMSHRs(now)
	if len(c.mshr) < c.cfg.MSHRs {
		return now
	}
	// Stall until the earliest in-flight fill completes.
	earliest := ^uint64(0)
	for _, e := range c.mshr {
		if e.ready < earliest {
			earliest = e.ready
		}
	}
	c.Stats.MSHRStalls += earliest - now
	c.reapMSHRs(earliest)
	return earliest
}

// MSHROccupancy reports how many miss entries are currently tracked. Pruning
// on every admit bounds it by the configured MSHR count no matter how long
// the run is (regression-tested by TestMSHROccupancyBounded).
func (c *Cache) MSHROccupancy() int { return len(c.mshr) }

// MSHRCapacity reports the configured maximum outstanding misses.
func (c *Cache) MSHRCapacity() int { return c.cfg.MSHRs }

// wbufAdmit blocks until a write-buffer entry is free.
func (c *Cache) wbufAdmit(now uint64) uint64 {
	if c.cfg.WriteBuf == 0 {
		return now
	}
	live := c.wbuf[:0]
	for _, done := range c.wbuf {
		if done > now {
			live = append(live, done)
		}
	}
	c.wbuf = live
	if len(c.wbuf) < c.cfg.WriteBuf {
		return now
	}
	earliest := c.wbuf[0]
	for _, done := range c.wbuf {
		if done < earliest {
			earliest = done
		}
	}
	c.Stats.WBufStalls += earliest - now
	return c.wbufAdmit(earliest)
}

// evict prepares a victim way, issuing a writeback if dirty. Returns the way.
func (c *Cache) evict(now uint64, lineAddr uint64) *cline {
	v := c.victim(lineAddr)
	if v.valid {
		c.Stats.Evictions++
		if v.tokenMask != 0 {
			// The token value is filled into the outgoing packet (Table I,
			// Eviction row); content is already authoritative in memory.
			c.Stats.TokenEvicts++
			if c.OnTokenEvict != nil {
				c.OnTokenEvict(v.tag<<c.setShift, v.tokenMask)
			}
		}
		if v.dirty || v.tokenMask != 0 {
			c.Stats.Writebacks++
			wbDone := c.next.Access(c.wbufAdmit(now), v.tag<<c.setShift, true)
			if c.cfg.WriteBuf > 0 {
				c.wbuf = append(c.wbuf, wbDone)
			}
		}
	}
	return v
}

// fill brings lineAddr into the cache, handling MSHR merging, coherence and
// eviction. Exclusive fills (for writes, arms, disarms) invalidate peer
// copies; shared fills source dirty peer data via intervention. It returns
// the cycle at which the line is resident and the installed way.
func (c *Cache) fill(now uint64, lineAddr uint64, exclusive bool) (uint64, *cline) {
	// Merge into an outstanding fill for the same line.
	if e := c.mshrFind(lineAddr); e != nil && e.ready > now {
		c.Stats.MergedMisses++
		if l := c.lookup(lineAddr); l != nil {
			return e.ready, l
		}
		// The line will be installed by the primary miss; install now for
		// bookkeeping (one-pass model).
	}
	now = c.mshrAdmit(now)
	var snoopLat uint64
	if exclusive {
		snoopLat = c.snoopInvalidate(now, lineAddr)
	} else {
		snoopLat = c.snoopRead(now, lineAddr)
	}
	done := c.next.Access(now+c.cfg.HitCycles+snoopLat, lineAddr, false)
	c.mshrSet(lineAddr, done)

	v := c.evict(now, lineAddr)
	v.valid = true
	v.dirty = false
	v.shared = !exclusive && c.peerHolds(lineAddr)
	v.tag = lineAddr >> c.setShift
	v.tokenMask = 0
	if c.tokens != nil {
		// Fill-time content detector (Figure 4): compare incoming chunks
		// against the token register and set the per-chunk token bits.
		v.tokenMask = c.tokens.LineTokenMask(lineAddr)
		if v.tokenMask != 0 {
			c.Stats.TokenFills++
		}
	}
	c.touch(v)
	return done, v
}

// peerHolds reports whether any peer cache currently holds lineAddr.
func (c *Cache) peerHolds(lineAddr uint64) bool {
	if c.group == nil {
		return false
	}
	for _, peer := range c.group.members {
		if peer != c && peer.lookup(lineAddr) != nil {
			return true
		}
	}
	return false
}

// chunkMask computes which token-chunk bits the byte range [addr, addr+size)
// covers within its line, given chunks chunks per line.
func chunkMask(addr uint64, size uint8, chunks int) uint8 {
	if chunks <= 0 {
		return 0
	}
	chunkBytes := uint64(LineBytes / chunks)
	off := addr & (LineBytes - 1)
	end := off + uint64(size) - 1
	if end > LineBytes-1 {
		end = LineBytes - 1
	}
	var mask uint8
	for ch := off / chunkBytes; ch <= end/chunkBytes; ch++ {
		mask |= 1 << ch
	}
	return mask
}

// CWFAdvanceCycles is how much earlier the critical word arrives than the
// full line on a miss (critical-word-first fetching, §III-B "Exception
// Reporting"): the requested word leads the 64-byte transfer.
const CWFAdvanceCycles = 10

// AccessResult reports the outcome of a data access.
type AccessResult struct {
	// Done is the cycle the requested data is available. On misses this is
	// the critical word's arrival, CWFAdvanceCycles before the full line.
	Done     uint64
	Hit      bool
	TokenHit bool // the access touched a token chunk (REST violation)
	// FillDone is the cycle the whole line is resident (== Done on hits).
	// The token detector's verdict is only final at FillDone: secure mode
	// reports violations then (possibly after the load retired — the
	// imprecise-exception lag); debug mode holds suspicious loads at the
	// MSHRs until then.
	FillDone uint64
}

// Load performs a read of size bytes at addr.
func (c *Cache) Load(now uint64, addr uint64, size uint8) AccessResult {
	return c.access(now, addr, size, false)
}

// Store performs a write of size bytes at addr.
func (c *Cache) Store(now uint64, addr uint64, size uint8) AccessResult {
	return c.access(now, addr, size, true)
}

func (c *Cache) access(now uint64, addr uint64, size uint8, write bool) AccessResult {
	c.Stats.Accesses++
	lineAddr := addr &^ (LineBytes - 1)
	res := AccessResult{}

	l := c.lookup(lineAddr)
	if l != nil {
		c.Stats.Hits++
		res.Hit = true
		res.Done = now + c.cfg.HitCycles
		res.FillDone = res.Done
	} else {
		c.Stats.Misses++
		fillDone, fl := c.fill(now, lineAddr, write)
		l = fl
		res.FillDone = fillDone + c.cfg.HitCycles
		// Critical-word first: the requested word beats the full line.
		res.Done = res.FillDone
		if res.Done > now+c.cfg.HitCycles+CWFAdvanceCycles {
			res.Done -= CWFAdvanceCycles
		}
	}
	c.touch(l)

	if l.tokenMask != 0 && c.tokens != nil {
		if l.tokenMask&chunkMask(addr, size, c.tokens.ChunksPerLine()) != 0 {
			c.Stats.TokenHits++
			res.TokenHit = true
			return res // faulting access does not modify the line
		}
	}
	if write {
		if l.shared {
			// Upgrade: invalidate peer copies before taking ownership.
			lat := c.snoopInvalidate(res.Done, lineAddr)
			res.Done += lat
			l.shared = false
		}
		l.dirty = true
		if c.cfg.WriteBuf > 0 {
			// Store data passes through the write buffer into the array.
			c.wbufAdmit(now)
			c.wbuf = append(c.wbuf, res.Done)
		}
	}

	// An access straddling two lines touches the next line too.
	if (addr&(LineBytes-1))+uint64(size) > LineBytes {
		r2 := c.access(res.Done, lineAddr+LineBytes, 1, write)
		if r2.Done > res.Done {
			res.Done = r2.Done
		}
		res.TokenHit = res.TokenHit || r2.TokenHit
		res.Hit = res.Hit && r2.Hit
	}
	return res
}

// Arm executes the cache side of the ARM instruction (Table I, Arm row):
// hit sets the token bit; miss fetches the line (write-allocate) then sets
// it. The token value itself is NOT written into the data array — it is
// materialized on eviction — so an arm hit completes in a single cycle
// despite being a line-wide write (§III-B).
func (c *Cache) Arm(now uint64, addr uint64) AccessResult {
	c.Stats.Accesses++
	lineAddr := addr &^ (LineBytes - 1)
	res := AccessResult{}
	l := c.lookup(lineAddr)
	if l != nil {
		c.Stats.Hits++
		res.Hit = true
		res.Done = now + 1 // single-cycle on hit
		if l.shared {
			res.Done += c.snoopInvalidate(now, lineAddr)
			l.shared = false
		}
	} else {
		c.Stats.Misses++
		fillDone, fl := c.fill(now, lineAddr, true)
		l = fl
		res.Done = fillDone + 1
	}
	res.FillDone = res.Done
	c.touch(l)
	chunks := 1
	if c.tokens != nil {
		chunks = c.tokens.ChunksPerLine()
	}
	l.tokenMask |= chunkMask(addr, 1, chunks)
	l.dirty = true
	return res
}

// Disarm executes the cache side of the DISARM instruction (Table I, Disarm
// row): it verifies the token bit (flagging TokenHit=false violations via
// the returned Unarmed flag), clears it, and zeroes the line concurrently
// across all data banks, costing one extra cycle.
func (c *Cache) Disarm(now uint64, addr uint64) (AccessResult, bool) {
	c.Stats.Accesses++
	lineAddr := addr &^ (LineBytes - 1)
	res := AccessResult{}
	l := c.lookup(lineAddr)
	if l == nil {
		c.Stats.Misses++
		fillDone, fl := c.fill(now, lineAddr, true)
		l = fl
		now = fillDone
	} else {
		c.Stats.Hits++
		res.Hit = true
		if l.shared {
			now += c.snoopInvalidate(now, lineAddr)
			l.shared = false
		}
	}
	c.touch(l)
	chunks := 1
	if c.tokens != nil {
		chunks = c.tokens.ChunksPerLine()
	}
	bit := chunkMask(addr, 1, chunks)
	if l.tokenMask&bit == 0 {
		// Disarm of an unarmed location: REST exception.
		res.Done = now + 1
		res.FillDone = res.Done
		return res, false
	}
	l.tokenMask &^= bit
	l.dirty = true
	c.Stats.DisarmZeroes++
	res.Done = now + 2 // 1-cycle access + 1-cycle all-bank zeroing write
	res.FillDone = res.Done
	return res, true
}

// TokenMask exposes the token bits of the line containing addr (testing and
// conformance checks).
func (c *Cache) TokenMask(addr uint64) (uint8, bool) {
	l := c.lookup(addr &^ (LineBytes - 1))
	if l == nil {
		return 0, false
	}
	return l.tokenMask, true
}

// Contains reports whether the line holding addr is resident.
func (c *Cache) Contains(addr uint64) bool {
	return c.lookup(addr&^(LineBytes-1)) != nil
}

// Access implements Level, so a Cache can back another Cache.
func (c *Cache) Access(now uint64, lineAddr uint64, write bool) uint64 {
	if write {
		// Writeback from the level above: absorb into this level.
		c.Stats.Accesses++
		l := c.lookup(lineAddr)
		if l == nil {
			c.Stats.Misses++
			done, fl := c.fill(now, lineAddr, false)
			fl.dirty = true
			return done
		}
		c.Stats.Hits++
		l.dirty = true
		c.touch(l)
		return now + c.cfg.HitCycles
	}
	res := c.access(now, lineAddr, LineBytes, false)
	return res.Done
}
