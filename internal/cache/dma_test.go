package cache

import "testing"

// TestDMABypassesDetector pins the §V-B detector-placement caveat: a DMA
// transfer over an armed region completes without any REST exception, while
// the same access through the L1-D faults.
func TestDMABypassesDetector(t *testing.T) {
	tok := &fakeTokens{masks: map[uint64]uint8{0x2000_0000: 1}, chunks: 1}
	h, err := NewHierarchy(DefaultHierConfig(), tok)
	if err != nil {
		t.Fatal(err)
	}

	// Through the core: caught.
	if r := h.L1D.Load(0, 0x2000_0000, 8); !r.TokenHit {
		t.Fatal("L1-D path did not detect the token")
	}

	// Through DMA below the L1s: silent.
	dma := NewDMAEngine(h.L2)
	done := dma.Transfer(1000, 0x2000_0000-64, 256, tok)
	if done <= 1000 {
		t.Error("transfer took no time")
	}
	if dma.LinesMoved != 4 {
		t.Errorf("lines moved = %d, want 4 (256B span)", dma.LinesMoved)
	}
	if dma.TokenLineHits != 1 {
		t.Errorf("token lines silently moved = %d, want 1 (the documented blind spot)", dma.TokenLineHits)
	}
}

func TestDMACleanRegion(t *testing.T) {
	h, err := NewHierarchy(DefaultHierConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	dma := NewDMAEngine(h.L2)
	dma.Transfer(0, 0x3000_0000, 512, nil)
	if dma.TokenLineHits != 0 {
		t.Error("token hits on a non-REST machine")
	}
	if dma.LinesMoved != 8 {
		t.Errorf("lines moved = %d, want 8", dma.LinesMoved)
	}
}
