package cache

import "testing"

// TestMSHROccupancyBounded is the pruning regression test: before completed
// entries were reaped, a long run's miss table grew with every unique line
// ever missed. Stream a miss-heavy workload far larger than the cache and
// assert the tracked-entry count never exceeds the configured MSHRs.
func TestMSHROccupancyBounded(t *testing.T) {
	next := &flatMem{lat: 100}
	c, err := New(Config{
		Name: "L1-D", SizeBytes: 4096, Ways: 2, HitCycles: 2, MSHRs: 4,
	}, next, nil)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	const lines = 50_000
	for i := 0; i < lines; i++ {
		// A fresh line every access: every one is a miss with its own MSHR
		// entry, and now advances so earlier fills keep completing.
		r := c.Load(now, uint64(i)*64, 8)
		now = r.Done
		if got := c.MSHROccupancy(); got > c.MSHRCapacity() {
			t.Fatalf("after miss %d: MSHR occupancy %d exceeds capacity %d",
				i, got, c.MSHRCapacity())
		}
	}
	if c.Stats.Misses != lines {
		t.Fatalf("misses = %d, want %d (every access must have missed)", c.Stats.Misses, lines)
	}
	// The structure holds at most the in-flight window, not run history.
	if got := c.MSHROccupancy(); got > c.MSHRCapacity() {
		t.Errorf("final occupancy %d exceeds capacity %d", got, c.MSHRCapacity())
	}
}

// TestMSHRMergeAfterReap pins an update-in-place subtlety: a line that missed,
// completed and was evicted can miss again; its stale (completed) entry must
// not satisfy the merge check, and re-recording it must not duplicate it.
func TestMSHRMergeAfterReap(t *testing.T) {
	next := &flatMem{lat: 100}
	c, err := New(Config{SizeBytes: 4096, Ways: 2, HitCycles: 2, MSHRs: 4}, next, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1 := c.Load(0, 0x0, 8)
	// Evict 0x0 from its set (2 ways, 2KiB conflict stride).
	c.Load(r1.FillDone, 0x800, 8)
	c.Load(r1.FillDone+200, 0x1000, 8)
	// Miss the same line again, long after its first fill completed.
	r2 := c.Load(r1.FillDone+500, 0x0, 8)
	if r2.Hit {
		t.Fatal("re-missed line reported as hit")
	}
	if c.Stats.MergedMisses != 0 {
		t.Errorf("stale completed entry merged a fresh miss (MergedMisses = %d)", c.Stats.MergedMisses)
	}
	if got := c.MSHROccupancy(); got > c.MSHRCapacity() {
		t.Errorf("occupancy %d exceeds capacity %d", got, c.MSHRCapacity())
	}
}
