package cache

import (
	"math/rand"
	"testing"
)

// refCache is an obviously-correct reference model of a set-associative LRU
// cache: per-set slices ordered most-recent-first. The real cache's
// residency must match it access-for-access.
type refCache struct {
	sets  [][]uint64 // line addresses, MRU first
	ways  int
	nSets uint64
}

func newRefCache(sizeBytes, ways int) *refCache {
	nSets := uint64(sizeBytes / LineBytes / ways)
	return &refCache{sets: make([][]uint64, nSets), ways: ways, nSets: nSets}
}

func (r *refCache) setOf(line uint64) int { return int((line >> 6) % r.nSets) }

// access touches a line, returns whether it hit, and applies LRU fill.
func (r *refCache) access(line uint64) bool {
	si := r.setOf(line)
	set := r.sets[si]
	for i, l := range set {
		if l == line {
			// Move to MRU.
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	// Miss: install at MRU, evict LRU if full.
	if len(set) >= r.ways {
		set = set[:r.ways-1]
	}
	r.sets[si] = append([]uint64{line}, set...)
	return false
}

func (r *refCache) contains(line uint64) bool {
	for _, l := range r.sets[r.setOf(line)] {
		if l == line {
			return true
		}
	}
	return false
}

// TestCacheMatchesGoldenModel drives the real cache and the reference model
// with the same random access stream and checks hit/miss verdicts and
// residency agree at every step.
func TestCacheMatchesGoldenModel(t *testing.T) {
	next := &flatMem{lat: 0} // zero latency: no in-flight-fill ambiguity
	c, err := New(Config{SizeBytes: 8192, Ways: 4, HitCycles: 1, MSHRs: 64}, next, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefCache(8192, 4)
	r := rand.New(rand.NewSource(6))
	now := uint64(0)
	for step := 0; step < 20000; step++ {
		now += 10
		line := uint64(r.Intn(512)) * 64 // 512 lines over a 128-line cache
		var hit bool
		if r.Intn(2) == 0 {
			hit = c.Load(now, line+uint64(r.Intn(56)), 8).Hit
		} else {
			hit = c.Store(now, line+uint64(r.Intn(56)), 8).Hit
		}
		refHit := ref.access(line)
		if hit != refHit {
			t.Fatalf("step %d line %#x: cache hit=%v, golden=%v", step, line, hit, refHit)
		}
		// Spot-check residency of a random line.
		probe := uint64(r.Intn(512)) * 64
		if c.Contains(probe) != ref.contains(probe) {
			t.Fatalf("step %d: residency of %#x diverges", step, probe)
		}
	}
}

// TestCacheGoldenWithTokens repeats the differential run with arm/disarm
// mixed in: token operations must not perturb LRU/residency behaviour
// (they are stores microarchitecturally).
func TestCacheGoldenWithTokens(t *testing.T) {
	tok := &fakeTokens{masks: map[uint64]uint8{}, chunks: 1}
	next := &flatMem{lat: 0}
	c, err := New(Config{SizeBytes: 8192, Ways: 4, HitCycles: 1, MSHRs: 64, RESTEnabled: true}, next, tok)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefCache(8192, 4)
	armed := map[uint64]bool{}
	r := rand.New(rand.NewSource(8))
	now := uint64(0)
	for step := 0; step < 20000; step++ {
		now += 10
		line := uint64(r.Intn(256)) * 64
		switch r.Intn(4) {
		case 0: // arm
			c.Arm(now, line)
			tok.masks[line] = 1
			armed[line] = true
			ref.access(line)
		case 1: // disarm armed lines only (avoid architectural faults)
			if armed[line] {
				c.Disarm(now, line)
				delete(tok.masks, line)
				delete(armed, line)
				ref.access(line)
			}
		default: // regular access to unarmed lines
			if !armed[line] {
				hit := c.Load(now, line, 8).Hit
				if hit != ref.access(line) {
					t.Fatalf("step %d: hit/miss diverges at %#x", step, line)
				}
			}
		}
	}
	// Final full-state audit: every armed line's token bit matches, every
	// resident line agrees with the golden model.
	for line := uint64(0); line < 256*64; line += 64 {
		if c.Contains(line) != ref.contains(line) {
			t.Fatalf("final residency of %#x diverges", line)
		}
		if c.Contains(line) && armed[line] {
			if m, _ := c.TokenMask(line); m == 0 {
				t.Fatalf("armed resident line %#x lost its token bit", line)
			}
		}
	}
}
