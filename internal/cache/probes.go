package cache

import "rest/internal/obs"

// Probes is one cache level's metric handle set. The cache hot path keeps
// counting into its existing Stats struct fields; Record flushes those into
// the registry at end of run, so enabling observability costs nothing per
// access.
type Probes struct {
	Accesses     *obs.Counter
	Hits         *obs.Counter
	Misses       *obs.Counter
	MergedMisses *obs.Counter
	Evictions    *obs.Counter
	Writebacks   *obs.Counter
	TokenFills   *obs.Counter
	TokenEvicts  *obs.Counter
	TokenHits    *obs.Counter
	DisarmZeroes *obs.Counter
	MSHRStalls   *obs.Counter
	WBufStalls   *obs.Counter
}

// NewProbes registers the metric set for one level under
// "cache.<level>.*" (nil r -> nil probes).
func NewProbes(r *obs.Registry, level string) *Probes {
	if r == nil {
		return nil
	}
	pfx := "cache." + level + "."
	return &Probes{
		Accesses:     r.Counter(pfx + "accesses"),
		Hits:         r.Counter(pfx + "hits"),
		Misses:       r.Counter(pfx + "misses"),
		MergedMisses: r.Counter(pfx + "merged_misses"),
		Evictions:    r.Counter(pfx + "evictions"),
		Writebacks:   r.Counter(pfx + "writebacks"),
		TokenFills:   r.Counter(pfx + "token_fills"),
		TokenEvicts:  r.Counter(pfx + "token_evicts"),
		TokenHits:    r.Counter(pfx + "token_hits"),
		DisarmZeroes: r.Counter(pfx + "disarm_zeroes"),
		MSHRStalls:   r.Counter(pfx + "mshr_stalls"),
		WBufStalls:   r.Counter(pfx + "wbuf_stalls"),
	}
}

// Record flushes one level's Stats into the probes. Nil-safe.
func (p *Probes) Record(s *Stats) {
	if p == nil {
		return
	}
	p.Accesses.Add(s.Accesses)
	p.Hits.Add(s.Hits)
	p.Misses.Add(s.Misses)
	p.MergedMisses.Add(s.MergedMisses)
	p.Evictions.Add(s.Evictions)
	p.Writebacks.Add(s.Writebacks)
	p.TokenFills.Add(s.TokenFills)
	p.TokenEvicts.Add(s.TokenEvicts)
	p.TokenHits.Add(s.TokenHits)
	p.DisarmZeroes.Add(s.DisarmZeroes)
	p.MSHRStalls.Add(s.MSHRStalls)
	p.WBufStalls.Add(s.WBufStalls)
}

// RecordHierarchy flushes every level of a hierarchy plus the derived
// token-crossing count into r under cache.l1i/l1d/l2 (nil-safe on both
// sides).
func RecordHierarchy(r *obs.Registry, h *Hierarchy) {
	if r == nil || h == nil {
		return
	}
	NewProbes(r, "l1i").Record(&h.L1I.Stats)
	NewProbes(r, "l1d").Record(&h.L1D.Stats)
	NewProbes(r, "l2").Record(&h.L2.Stats)
	r.Counter("cache.token_l2mem_crossings").Add(h.TokenL2MemCrossings())
}

// RecordDMA flushes a DMA engine's counters: transfers, lines moved, and
// the token-bearing lines that bypassed the L1-D detector — the §V-B blind
// spot, now countable. Nil-safe on both sides.
func RecordDMA(r *obs.Registry, d *DMAEngine) {
	if r == nil || d == nil {
		return
	}
	r.Counter("cache.dma.transfers").Add(d.Transfers)
	r.Counter("cache.dma.lines_moved").Add(d.LinesMoved)
	r.Counter("cache.dma.token_line_bypasses").Add(d.TokenLineHits)
}
