// Package bpred implements the branch prediction substrate used by the
// fetch stage of the timing model. The paper's gem5 configuration uses
// L-TAGE with 1+12 components and ~31k entries (Table II); we implement a
// TAGE predictor with a bimodal base table and geometrically growing tagged
// history tables, plus a branch target buffer and a return address stack for
// call/return targets.
package bpred

import (
	"math"

	"rest/internal/isa"
)

// Config sizes the predictor. Zero values are replaced by defaults matching
// Table II's scale.
type Config struct {
	BimodalBits  int // log2 entries in base predictor (default 14 -> 16k)
	TaggedTables int // number of tagged components (default 12)
	TaggedBits   int // log2 entries per tagged table (default 10)
	TagWidth     int // tag bits per tagged entry (default 11)
	MinHistory   int // shortest tagged history length (default 4)
	MaxHistory   int // longest tagged history length (default 640)
	BTBBits      int // log2 BTB entries (default 12)
	RASEntries   int // return address stack depth (default 32)
	LoopBits     int // log2 loop-predictor entries (default 8; <0 disables)
}

func (c *Config) applyDefaults() {
	if c.BimodalBits == 0 {
		c.BimodalBits = 14
	}
	if c.TaggedTables == 0 {
		c.TaggedTables = 12
	}
	if c.TaggedBits == 0 {
		c.TaggedBits = 10
	}
	if c.TagWidth == 0 {
		c.TagWidth = 11
	}
	if c.MinHistory == 0 {
		c.MinHistory = 4
	}
	if c.MaxHistory == 0 {
		c.MaxHistory = 640
	}
	if c.BTBBits == 0 {
		c.BTBBits = 12
	}
	if c.RASEntries == 0 {
		c.RASEntries = 32
	}
	if c.LoopBits == 0 {
		c.LoopBits = 8
	}
}

type taggedEntry struct {
	tag    uint32
	ctr    int8  // 3-bit signed saturating: -4..3, taken when >= 0
	useful uint8 // 2-bit useful counter
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// Predictor is a TAGE branch direction predictor with BTB and RAS. It is
// deliberately deterministic: allocation tie-breaking uses a simple LFSR.
type Predictor struct {
	cfg Config

	bimodal []int8 // 2-bit counters: -2..1, taken when >= 0

	tables    [][]taggedEntry
	histLen   []int
	ghist     []byte // global history bits, most recent at index 0 position ghead
	ghead     int
	foldedIdx []foldedHistory
	foldedTag [2][]foldedHistory

	btb  []btbEntry
	ras  []uint64
	rsp  int
	loop *loopPredictor // the "L" of L-TAGE; nil when disabled

	lfsr uint32

	// Stats.
	Lookups      uint64
	Mispredicts  uint64
	TargetMisses uint64
	RASCorrect   uint64
	RASWrong     uint64
}

// foldedHistory incrementally folds a long global history into idxBits.
type foldedHistory struct {
	comp    uint32
	origLen int
	outLen  int
	outPos  int
}

func (f *foldedHistory) update(newBit, oldBit uint32) {
	f.comp = (f.comp << 1) | newBit
	f.comp ^= oldBit << uint(f.outPos)
	f.comp ^= f.comp >> uint(f.outLen)
	f.comp &= (1 << uint(f.outLen)) - 1
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	cfg.applyDefaults()
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]int8, 1<<cfg.BimodalBits),
		btb:     make([]btbEntry, 1<<cfg.BTBBits),
		ras:     make([]uint64, cfg.RASEntries),
		lfsr:    0xACE1,
	}
	p.tables = make([][]taggedEntry, cfg.TaggedTables)
	p.histLen = make([]int, cfg.TaggedTables)
	p.foldedIdx = make([]foldedHistory, cfg.TaggedTables)
	p.foldedTag[0] = make([]foldedHistory, cfg.TaggedTables)
	p.foldedTag[1] = make([]foldedHistory, cfg.TaggedTables)
	// Geometric history lengths between MinHistory and MaxHistory.
	ratio := 1.0
	if cfg.TaggedTables > 1 {
		ratio = math.Pow(float64(cfg.MaxHistory)/float64(cfg.MinHistory), 1.0/float64(cfg.TaggedTables-1))
	}
	l := float64(cfg.MinHistory)
	for i := 0; i < cfg.TaggedTables; i++ {
		p.tables[i] = make([]taggedEntry, 1<<cfg.TaggedBits)
		p.histLen[i] = int(l + 0.5)
		if i > 0 && p.histLen[i] <= p.histLen[i-1] {
			p.histLen[i] = p.histLen[i-1] + 1
		}
		l *= ratio
		p.foldedIdx[i] = foldedHistory{origLen: p.histLen[i], outLen: cfg.TaggedBits}
		p.foldedIdx[i].outPos = p.histLen[i] % cfg.TaggedBits
		p.foldedTag[0][i] = foldedHistory{origLen: p.histLen[i], outLen: cfg.TagWidth}
		p.foldedTag[0][i].outPos = p.histLen[i] % cfg.TagWidth
		p.foldedTag[1][i] = foldedHistory{origLen: p.histLen[i], outLen: cfg.TagWidth - 1}
		p.foldedTag[1][i].outPos = p.histLen[i] % (cfg.TagWidth - 1)
	}
	p.ghist = make([]byte, cfg.MaxHistory+1)
	if cfg.LoopBits > 0 {
		p.loop = newLoopPredictor(cfg.LoopBits)
	}
	return p
}

func (p *Predictor) rand() uint32 {
	// 16-bit Galois LFSR.
	lsb := p.lfsr & 1
	p.lfsr >>= 1
	if lsb != 0 {
		p.lfsr ^= 0xB400
	}
	return p.lfsr
}

func (p *Predictor) bimodalIndex(pc uint64) int {
	return int((pc >> 4) & uint64(len(p.bimodal)-1))
}

func (p *Predictor) tableIndex(pc uint64, t int) int {
	h := p.foldedIdx[t].comp
	idx := uint32(pc>>4) ^ uint32(pc>>(uint(4+p.cfg.TaggedBits))) ^ h
	return int(idx & uint32(len(p.tables[t])-1))
}

func (p *Predictor) tableTag(pc uint64, t int) uint32 {
	tag := uint32(pc>>4) ^ p.foldedTag[0][t].comp ^ (p.foldedTag[1][t].comp << 1)
	return tag & ((1 << uint(p.cfg.TagWidth)) - 1)
}

// PredictDirection predicts taken/not-taken for a conditional branch at pc.
// It returns the prediction plus an opaque provider index used on update.
// A confident loop-predictor entry overrides the TAGE tables (L-TAGE).
func (p *Predictor) PredictDirection(pc uint64) (taken bool, provider int) {
	if p.loop != nil {
		if lt, confident := p.loop.predict(pc); confident {
			return lt, -2
		}
	}
	provider = -1
	for t := p.cfg.TaggedTables - 1; t >= 0; t-- {
		e := &p.tables[t][p.tableIndex(pc, t)]
		if e.tag == p.tableTag(pc, t) {
			return e.ctr >= 0, t
		}
	}
	return p.bimodal[p.bimodalIndex(pc)] >= 0, -1
}

// Update trains the predictor with the actual outcome. provider is the value
// returned by PredictDirection for the same branch. mispredicted reports
// whether the direction prediction was wrong (drives allocation).
func (p *Predictor) Update(pc uint64, taken bool, provider int, mispredicted bool) {
	if p.loop != nil {
		p.loop.update(pc, taken)
	}
	if provider == -2 {
		// Loop predictor provided; it trained above. Keep history current.
		p.pushHistory(taken)
		return
	}
	// Train provider.
	if provider >= 0 {
		e := &p.tables[provider][p.tableIndex(pc, provider)]
		if e.tag == p.tableTag(pc, provider) {
			e.ctr = satUpdate3(e.ctr, taken)
			if !mispredicted && e.useful < 3 {
				e.useful++
			}
		}
	} else {
		i := p.bimodalIndex(pc)
		p.bimodal[i] = satUpdate2(p.bimodal[i], taken)
	}

	// On a misprediction, allocate in a longer-history table.
	if mispredicted && provider < p.cfg.TaggedTables-1 {
		start := provider + 1
		// Randomize start a little, as TAGE does, to spread allocations.
		if start < p.cfg.TaggedTables-1 && p.rand()&1 == 0 {
			start++
		}
		for t := start; t < p.cfg.TaggedTables; t++ {
			e := &p.tables[t][p.tableIndex(pc, t)]
			if e.useful == 0 {
				e.tag = p.tableTag(pc, t)
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				break
			}
			e.useful--
		}
	}

	// Push outcome into global history and refresh folded histories.
	p.pushHistory(taken)
}

func (p *Predictor) pushHistory(taken bool) {
	// Shift history: index 0 is most recent.
	copy(p.ghist[1:], p.ghist[:len(p.ghist)-1])
	b := byte(0)
	if taken {
		b = 1
	}
	p.ghist[0] = b
	for t := 0; t < p.cfg.TaggedTables; t++ {
		old := uint32(p.ghist[p.histLen[t]])
		p.foldedIdx[t].update(uint32(b), old)
		p.foldedTag[0][t].update(uint32(b), old)
		p.foldedTag[1][t].update(uint32(b), old)
	}
}

func satUpdate3(c int8, taken bool) int8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > -4 {
		return c - 1
	}
	return c
}

func satUpdate2(c int8, taken bool) int8 {
	if taken {
		if c < 1 {
			return c + 1
		}
		return c
	}
	if c > -2 {
		return c - 1
	}
	return c
}

// PredictTarget predicts the target of a taken control transfer at pc. For
// returns it pops the RAS; for others it consults the BTB.
func (p *Predictor) PredictTarget(pc uint64, op isa.Op) (uint64, bool) {
	if op == isa.OpRet {
		if p.rsp > 0 {
			return p.ras[p.rsp-1], true
		}
		return 0, false
	}
	e := &p.btb[p.btbIndex(pc)]
	if e.valid && e.tag == pc {
		return e.target, true
	}
	return 0, false
}

func (p *Predictor) btbIndex(pc uint64) int {
	return int((pc >> 4) & uint64(len(p.btb)-1))
}

// Resolve is the single entry point the fetch model uses: it predicts a
// branch, immediately learns the actual outcome, and reports whether the
// front end would have redirected (direction or target misprediction).
func (p *Predictor) Resolve(pc uint64, op isa.Op, taken bool, target uint64, returnAddr uint64) (mispredicted bool) {
	p.Lookups++
	switch {
	case op.IsCondBranch():
		pred, provider := p.PredictDirection(pc)
		mis := pred != taken
		if !mis && taken {
			// Direction right; target must also be right (BTB).
			if t, ok := p.PredictTarget(pc, op); !ok || t != target {
				mis = true
				p.TargetMisses++
			}
		}
		p.Update(pc, taken, provider, pred != taken)
		p.trainBTB(pc, taken, target)
		if mis {
			p.Mispredicts++
		}
		return mis

	case op == isa.OpRet:
		t, ok := p.PredictTarget(pc, op)
		if p.rsp > 0 {
			p.rsp--
		}
		mis := !ok || t != target
		if mis {
			p.RASWrong++
			p.Mispredicts++
		} else {
			p.RASCorrect++
		}
		return mis

	case op == isa.OpCall || op == isa.OpCallR:
		// Push the return address.
		if p.rsp < len(p.ras) {
			p.ras[p.rsp] = returnAddr
			p.rsp++
		} else {
			// Overflow: overwrite top (circular would also be fine).
			p.ras[len(p.ras)-1] = returnAddr
		}
		if op == isa.OpCall {
			// Direct call: target known at decode; no misprediction.
			p.trainBTB(pc, true, target)
			return false
		}
		// Indirect call: BTB target prediction.
		t, ok := p.PredictTarget(pc, op)
		p.trainBTB(pc, true, target)
		mis := !ok || t != target
		if mis {
			p.Mispredicts++
			p.TargetMisses++
		}
		return mis

	default: // OpJmp: direct, target known at decode.
		p.trainBTB(pc, true, target)
		return false
	}
}

func (p *Predictor) trainBTB(pc uint64, taken bool, target uint64) {
	if !taken {
		return
	}
	e := &p.btb[p.btbIndex(pc)]
	e.valid, e.tag, e.target = true, pc, target
}

// Accuracy reports the fraction of resolved control transfers predicted
// correctly.
func (p *Predictor) Accuracy() float64 {
	if p.Lookups == 0 {
		return 1
	}
	return 1 - float64(p.Mispredicts)/float64(p.Lookups)
}
