package bpred

// Loop predictor: the "L" of L-TAGE (Seznec, CBP-2). Loops with a stable
// trip count defeat counter- and history-based predictors exactly once per
// iteration space (the exit). The loop predictor tags branches, learns
// their trip counts, and overrides TAGE with "not taken on iteration N"
// once the same count has been confirmed enough times.

type loopEntry struct {
	tag       uint32
	tripCount uint32 // learned iterations until the exit
	current   uint32 // iterations seen since last exit
	confid    uint8  // confirmations of the same trip count
	age       uint8
	valid     bool
}

// loopPredictor is a small direct-mapped table of loop entries.
type loopPredictor struct {
	entries []loopEntry
}

func newLoopPredictor(bits int) *loopPredictor {
	return &loopPredictor{entries: make([]loopEntry, 1<<bits)}
}

func (lp *loopPredictor) index(pc uint64) int {
	return int((pc >> 4) & uint64(len(lp.entries)-1))
}

func (lp *loopPredictor) tag(pc uint64) uint32 {
	return uint32(pc>>4) & 0x3FFF
}

// confidenceThreshold: trip count must repeat this many times before the
// loop predictor overrides TAGE.
const loopConfidence = 3

// predict returns (taken, confident). Confident predictions override TAGE.
func (lp *loopPredictor) predict(pc uint64) (bool, bool) {
	e := &lp.entries[lp.index(pc)]
	if !e.valid || e.tag != lp.tag(pc) || e.confid < loopConfidence {
		return false, false
	}
	// Predict taken until the learned trip count, not-taken at the exit.
	return e.current+1 < e.tripCount, true
}

// update trains the loop predictor with the branch outcome (loop branches
// are taken while looping and not-taken once at the exit).
func (lp *loopPredictor) update(pc uint64, taken bool) {
	e := &lp.entries[lp.index(pc)]
	if !e.valid || e.tag != lp.tag(pc) {
		// Allocate on a not-taken outcome (a potential loop exit) when the
		// slot is replaceable.
		if e.valid && e.age > 0 {
			e.age--
			return
		}
		*e = loopEntry{tag: lp.tag(pc), valid: true, age: 3}
		return
	}
	if taken {
		e.current++
		return
	}
	// Loop exit: confirm or re-learn the trip count.
	count := e.current + 1
	if count == e.tripCount {
		if e.confid < 7 {
			e.confid++
		}
		if e.age < 7 {
			e.age++
		}
	} else {
		e.tripCount = count
		e.confid = 0
	}
	e.current = 0
}
