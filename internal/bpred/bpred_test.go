package bpred

import (
	"math/rand"
	"testing"

	"rest/internal/isa"
)

func TestDefaultsApplied(t *testing.T) {
	p := New(Config{})
	if len(p.bimodal) != 1<<14 {
		t.Errorf("bimodal size = %d, want %d", len(p.bimodal), 1<<14)
	}
	if len(p.tables) != 12 {
		t.Errorf("tagged tables = %d, want 12", len(p.tables))
	}
	// History lengths are strictly increasing and span min..>=max-ish.
	for i := 1; i < len(p.histLen); i++ {
		if p.histLen[i] <= p.histLen[i-1] {
			t.Fatalf("history lengths not increasing: %v", p.histLen)
		}
	}
	if p.histLen[0] != 4 {
		t.Errorf("shortest history = %d, want 4", p.histLen[0])
	}
}

// resolveLoop runs a synthetic branch stream and returns accuracy.
func resolveLoop(p *Predictor, n int, outcome func(i int) bool, pc uint64) float64 {
	misses := 0
	for i := 0; i < n; i++ {
		taken := outcome(i)
		target := pc + 0x100
		if p.Resolve(pc, isa.OpBeq, taken, target, pc+16) {
			misses++
		}
	}
	return 1 - float64(misses)/float64(n)
}

func TestAlwaysTakenLearned(t *testing.T) {
	p := New(Config{})
	acc := resolveLoop(p, 1000, func(int) bool { return true }, 0x400000)
	if acc < 0.98 {
		t.Errorf("always-taken accuracy = %f, want >= 0.98", acc)
	}
}

func TestAlternatingPatternLearned(t *testing.T) {
	p := New(Config{})
	// T,N,T,N... is beyond bimodal but trivial for short-history TAGE.
	acc := resolveLoop(p, 4000, func(i int) bool { return i%2 == 0 }, 0x400040)
	if acc < 0.95 {
		t.Errorf("alternating accuracy = %f, want >= 0.95", acc)
	}
}

func TestPeriodicPatternLearned(t *testing.T) {
	p := New(Config{})
	// Period-7 pattern: needs history correlation, impossible for bimodal.
	pat := []bool{true, true, false, true, false, false, true}
	acc := resolveLoop(p, 20000, func(i int) bool { return pat[i%len(pat)] }, 0x400080)
	if acc < 0.90 {
		t.Errorf("period-7 accuracy = %f, want >= 0.90", acc)
	}
}

func TestTAGEBeatsBimodalOnHistoryPattern(t *testing.T) {
	tage := New(Config{})
	bimodalOnly := New(Config{TaggedTables: 1, MinHistory: 4, MaxHistory: 5, TaggedBits: 2})
	pat := []bool{true, false, true, true, false, false, false, true}
	f := func(i int) bool { return pat[i%len(pat)] }
	accT := resolveLoop(tage, 20000, f, 0x400100)
	accB := resolveLoop(bimodalOnly, 20000, f, 0x400100)
	if accT <= accB {
		t.Errorf("TAGE accuracy %f not better than near-bimodal %f", accT, accB)
	}
}

func TestRandomBranchesNearChance(t *testing.T) {
	p := New(Config{})
	r := rand.New(rand.NewSource(1))
	acc := resolveLoop(p, 10000, func(int) bool { return r.Intn(2) == 0 }, 0x400200)
	if acc > 0.65 {
		t.Errorf("random-branch accuracy = %f, suspiciously high", acc)
	}
	if acc < 0.35 {
		t.Errorf("random-branch accuracy = %f, suspiciously low", acc)
	}
}

func TestCallReturnRAS(t *testing.T) {
	p := New(Config{})
	callPC := uint64(0x400000)
	retPC := uint64(0x500000)
	fnAddr := uint64(0x500000 - 0x100)
	// call/ret pairs: after warmup, returns should be RAS-predicted.
	for i := 0; i < 100; i++ {
		ra := callPC + 16
		if p.Resolve(callPC, isa.OpCall, true, fnAddr, ra) {
			t.Fatal("direct call mispredicted")
		}
		if mis := p.Resolve(retPC, isa.OpRet, true, ra, 0); mis && i > 0 {
			t.Fatalf("return %d mispredicted", i)
		}
	}
	if p.RASCorrect < 99 {
		t.Errorf("RASCorrect = %d, want >= 99", p.RASCorrect)
	}
}

func TestNestedCallsRAS(t *testing.T) {
	p := New(Config{})
	// Simulate depth-8 nesting repeatedly.
	for rep := 0; rep < 20; rep++ {
		var ras []uint64
		for d := 0; d < 8; d++ {
			pc := uint64(0x400000 + d*0x1000)
			ra := pc + 16
			ras = append(ras, ra)
			p.Resolve(pc, isa.OpCall, true, pc+0x800, ra)
		}
		for d := 7; d >= 0; d-- {
			pc := uint64(0x600000 + d*0x1000)
			mis := p.Resolve(pc, isa.OpRet, true, ras[d], 0)
			if rep > 0 && mis {
				t.Fatalf("rep %d depth %d return mispredicted", rep, d)
			}
		}
	}
}

func TestDirectJumpNeverMispredicts(t *testing.T) {
	p := New(Config{})
	for i := 0; i < 10; i++ {
		if p.Resolve(0x400000, isa.OpJmp, true, 0x400100, 0) {
			t.Fatal("direct jump mispredicted")
		}
	}
}

func TestIndirectCallLearnsTarget(t *testing.T) {
	p := New(Config{})
	pc, tgt := uint64(0x400300), uint64(0x410000)
	first := p.Resolve(pc, isa.OpCallR, true, tgt, pc+16)
	if !first {
		t.Error("cold indirect call predicted correctly, want miss")
	}
	for i := 0; i < 5; i++ {
		p.Resolve(uint64(0x600000+i*0x1000), isa.OpRet, true, pc+16, 0) // drain RAS pushes
	}
	if p.Resolve(pc, isa.OpCallR, true, tgt, pc+16) {
		t.Error("warm indirect call mispredicted")
	}
}

func TestAccuracyStat(t *testing.T) {
	p := New(Config{})
	if p.Accuracy() != 1 {
		t.Error("empty predictor accuracy != 1")
	}
	resolveLoop(p, 100, func(int) bool { return true }, 0x400000)
	if p.Lookups != 100 {
		t.Errorf("Lookups = %d, want 100", p.Lookups)
	}
	if a := p.Accuracy(); a < 0 || a > 1 {
		t.Errorf("Accuracy = %f out of range", a)
	}
}

func TestFoldedHistoryBounded(t *testing.T) {
	p := New(Config{})
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		p.pushHistory(r.Intn(2) == 0)
	}
	for t1 := range p.foldedIdx {
		if p.foldedIdx[t1].comp >= 1<<uint(p.cfg.TaggedBits) {
			t.Fatalf("folded index %d overflowed: %#x", t1, p.foldedIdx[t1].comp)
		}
	}
}
