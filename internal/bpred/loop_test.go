package bpred

import (
	"math/rand"
	"testing"

	"rest/internal/isa"
)

// loopStream resolves a fixed-trip-count loop branch: taken (trips-1)
// times, then not-taken, repeated. Each iteration also resolves a
// random-outcome branch in the loop body (rng non-nil), which pollutes the
// global history — the realistic case where TAGE cannot pattern-match the
// exit but a trip counter can.
func loopStream(p *Predictor, trips, reps int, pc uint64, rng *rand.Rand) (loopMispredicts int) {
	for r := 0; r < reps; r++ {
		for i := 0; i < trips; i++ {
			if rng != nil {
				p.Resolve(pc+64, isa.OpBne, rng.Intn(2) == 0, pc+0x800, pc+80)
			}
			taken := i < trips-1
			if p.Resolve(pc, isa.OpBeq, taken, pc-16*uint64(trips), pc+16) {
				loopMispredicts++
			}
		}
	}
	return loopMispredicts
}

func TestLoopPredictorLearnsTripCount(t *testing.T) {
	// A 23-iteration loop with a random body branch polluting the history:
	// TAGE cannot pattern-match the exit; the trip counter can.
	withLoop := New(Config{})
	m1 := loopStream(withLoop, 23, 80, 0x400100, rand.New(rand.NewSource(1)))
	noLoop := New(Config{LoopBits: -1})
	m2 := loopStream(noLoop, 23, 80, 0x400100, rand.New(rand.NewSource(1)))
	if m1*2 >= m2 {
		t.Errorf("L-TAGE loop-branch mispredicts (%d) not well below TAGE-only (%d)", m1, m2)
	}
	// After warmup, the exit should be predicted essentially perfectly.
	warm := New(Config{})
	loopStream(warm, 23, 20, 0x400200, rand.New(rand.NewSource(2)))
	tail := loopStream(warm, 23, 50, 0x400200, rand.New(rand.NewSource(3)))
	if tail > 3 {
		t.Errorf("warm L-TAGE still mispredicts %d loop exits over 50 reps", tail)
	}
}

func TestLoopPredictorRelearnsChangedTripCount(t *testing.T) {
	p := New(Config{})
	loopStream(p, 10, 30, 0x400300, nil)
	// Trip count changes: predictor must re-learn rather than stick.
	m := loopStream(p, 17, 40, 0x400300, nil)
	mTail := loopStream(p, 17, 20, 0x400300, nil)
	if mTail > 2 {
		t.Errorf("after re-learning, still %d mispredicts in 20 reps (initial %d)", mTail, m)
	}
}

func TestLoopPredictorIrregularLoopsHarmless(t *testing.T) {
	// Variable trip counts: the loop predictor must not gain confidence and
	// must leave prediction to TAGE (no catastrophic override).
	p := New(Config{})
	trips := []int{5, 9, 7, 12, 6, 8, 11, 5}
	mis := 0
	total := 0
	for r := 0; r < 60; r++ {
		tc := trips[r%len(trips)]
		for i := 0; i < tc; i++ {
			total++
			if p.Resolve(0x400400, isa.OpBeq, i < tc-1, 0x400000, 0x400410) {
				mis++
			}
		}
	}
	// TAGE alone on the same stream.
	pn := New(Config{LoopBits: -1})
	misN := 0
	for r := 0; r < 60; r++ {
		tc := trips[r%len(trips)]
		for i := 0; i < tc; i++ {
			if pn.Resolve(0x400400, isa.OpBeq, i < tc-1, 0x400000, 0x400410) {
				misN++
			}
		}
	}
	// The loop predictor may not make things more than marginally worse.
	if mis > misN+total/20 {
		t.Errorf("loop predictor hurt irregular loops: %d vs %d of %d", mis, misN, total)
	}
}
