// Package workload provides the 12 SPEC-CPU2006-named synthetic benchmarks
// the evaluation sweeps (Figures 3, 7 and 8). Real SPEC binaries cannot run
// on this simulator, so each workload is a synthetic program calibrated to
// the published traits that drive the REST/ASan overhead shapes: allocation
// rate (xalanc ≈ 0.2 allocations per kilo-instruction; lbm and sjeng fewer
// than 10 allocations total, §VI-B), working-set size, memcpy intensity
// (interceptor pressure), branchiness, and load/store density (access-check
// pressure). Every workload accumulates a data checksum so that plain, ASan
// and REST builds can be verified to compute identical results.
package workload

import (
	"rest/internal/isa"
	"rest/internal/prog"
)

// lcgMul/lcgAdd drive the in-program pseudo-random sequence used for
// unpredictable branches and hash-style indexing.
const (
	lcgMul = 6364136223846793005
	lcgAdd = 1442695040888963407
)

// allocArray allocates n 8-byte elements on the heap and returns the base
// pointer register (persistent; caller's budget).
func allocArray(f *prog.Function, dst prog.Reg, n int64) {
	f.CallMallocI(dst, n*8)
}

// initArray fills a[0..n) with i*mult+add (8-byte elements).
func initArray(f *prog.Function, base prog.Reg, n, mult, add int64) {
	f.ForRangeI(n, func(i prog.Reg) {
		p := f.Reg()
		v := f.Reg()
		f.ShlI(p, i, 3)
		f.Add(p, p, base)
		f.OpI(isa.OpMulI, v, i, mult)
		f.AddI(v, v, add)
		f.Store(p, 0, v, 8)
	})
}

// initPermutation fills a[i] = (i + stride) % n so that chasing a[] visits
// every element (stride coprime with n).
func initPermutation(f *prog.Function, base prog.Reg, n, stride int64) {
	f.ForRangeI(n, func(i prog.Reg) {
		p := f.Reg()
		v := f.Reg()
		nn := f.Reg()
		f.ShlI(p, i, 3)
		f.Add(p, p, base)
		f.AddI(v, i, stride)
		f.MovI(nn, n)
		f.Op3(isa.OpRem, v, v, nn)
		f.Store(p, 0, v, 8)
	})
}

// sumArray streams a[0..n) accumulating into the checksum (sequential loads,
// the "linear" access pattern of §VII).
func sumArray(f *prog.Function, base prog.Reg, n int64) {
	f.ForRangeI(n, func(i prog.Reg) {
		p := f.Reg()
		v := f.Reg()
		f.ShlI(p, i, 3)
		f.Add(p, p, base)
		f.Load(v, p, 0, 8)
		f.Checksum(v)
	})
}

// chase performs steps dependent loads: idx = a[idx] (pointer-chase latency
// pattern). idx must be initialized by the caller and stays live.
func chase(f *prog.Function, base, idx prog.Reg, steps int64) {
	f.ForRangeI(steps, func(prog.Reg) {
		p := f.Reg()
		f.ShlI(p, idx, 3)
		f.Add(p, p, base)
		f.Load(idx, p, 0, 8)
	})
	f.Checksum(idx)
}

// compute runs an n-iteration multiply-add dependency chain (FP-kernel
// stand-in; exercises issue logic rather than memory).
func compute(f *prog.Function, acc prog.Reg, n int64) {
	f.ForRangeI(n, func(i prog.Reg) {
		f.OpI(isa.OpMulI, acc, acc, sixTicks)
		f.Add(acc, acc, i)
	})
	f.Checksum(acc)
}

// sixTicks is a small odd multiplier for the compute kernel.
const sixTicks = 7

// branchyLCG runs n iterations of an LCG with a data-dependent branch on the
// high bit (≈50% taken, history-resistant: the gobmk/sjeng pattern).
func branchyLCG(f *prog.Function, x prog.Reg, n int64) {
	f.ForRangeI(n, func(prog.Reg) {
		t := f.Reg()
		f.OpI(isa.OpMulI, x, x, lcgMul)
		f.AddI(x, x, lcgAdd)
		f.ShrI(t, x, 63)
		f.If(isa.OpBne, t, prog.Reg(isa.RZero), func() {
			f.AddI(prog.RRes, prog.RRes, 3)
		}, func() {
			f.AddI(prog.RRes, prog.RRes, 1)
		})
	})
}

// hashProbes performs n random-index probes into a table of tblN 8-byte
// entries (sjeng transposition-table pattern): LCG index, load, compare,
// conditional accumulate.
func hashProbes(f *prog.Function, table, x prog.Reg, tblN, n int64) {
	f.ForRangeI(n, func(prog.Reg) {
		t := f.Reg()
		v := f.Reg()
		f.OpI(isa.OpMulI, x, x, lcgMul)
		f.AddI(x, x, lcgAdd)
		f.ShrI(t, x, 32)
		f.AndI(t, t, tblN-1) // tblN must be a power of two
		f.ShlI(t, t, 3)
		f.Add(t, t, table)
		f.Load(v, t, 0, 8)
		f.If(isa.OpBltu, v, x, func() {
			f.Checksum(v)
		}, nil)
	})
}

// stencil applies dst[i] = src[i-1] + src[i] + src[i+1] over i in [1, n-1)
// (lbm-style sweep: 3 loads + 1 store per element).
func stencil(f *prog.Function, dst, src prog.Reg, n int64) {
	f.ForRangeI(n-2, func(i prog.Reg) {
		p := f.Reg()
		a := f.Reg()
		b := f.Reg()
		f.ShlI(p, i, 3)
		f.Add(p, p, src)
		f.Load(a, p, 0, 8)
		f.Load(b, p, 8, 8)
		f.Add(a, a, b)
		f.Load(b, p, 16, 8)
		f.Add(a, a, b)
		f.Sub(p, p, src)
		f.Add(p, p, dst)
		f.Store(p, 8, a, 8)
	})
}

// blockCopies performs n memcpy calls of blockBytes each, walking through a
// region (h264 motion-compensation pattern; ASan intercepts every call).
func blockCopies(f *prog.Function, dst, src prog.Reg, blockBytes, n int64) {
	f.ForRangeI(n, func(i prog.Reg) {
		d := f.Reg()
		s := f.Reg()
		nn := f.Reg()
		f.OpI(isa.OpMulI, d, i, blockBytes)
		f.Add(s, d, src)
		f.Add(d, d, dst)
		f.MovI(nn, blockBytes)
		f.CallMemcpy(d, s, nn)
	})
}

// ringChurn allocates one object of objBytes per call, stores a data word
// into it, and frees the object that was in the ring slot before it: a
// bounded-live-set allocation churn (xalanc/gcc pattern). ring holds
// ringN pointer slots and must be a zero-initialized heap array.
func ringChurn(f *prog.Function, ring prog.Reg, ringN, objBytes int64, iters int64) {
	f.ForRangeI(iters, func(i prog.Reg) {
		slot := f.Reg()
		old := f.Reg()
		p := f.Reg()
		nn := f.Reg()
		f.MovI(nn, ringN)
		f.Op3(isa.OpRem, slot, i, nn)
		f.ShlI(slot, slot, 3)
		f.Add(slot, slot, ring)
		f.Load(old, slot, 0, 8)
		f.If(isa.OpBne, old, prog.Reg(isa.RZero), func() {
			f.CallFree(old)
		}, nil)
		f.CallMallocI(p, objBytes)
		f.Store(p, 0, i, 8)
		f.Store(p, 8, i, 8)
		f.Store(slot, 0, p, 8)
		// Read a field back: data checksum, never the pointer (layouts
		// differ across allocators).
		v := f.Reg()
		f.Load(v, p, 0, 8)
		f.Checksum(v)
	})
}

// walkRing visits every live object in the ring and checksums a data field
// (the list/tree walk between allocation bursts in gcc/xalanc).
func walkRing(f *prog.Function, ring prog.Reg, ringN int64) {
	f.ForRangeI(ringN, func(i prog.Reg) {
		slot := f.Reg()
		p := f.Reg()
		f.ShlI(slot, i, 3)
		f.Add(slot, slot, ring)
		f.Load(p, slot, 0, 8)
		f.If(isa.OpBne, p, prog.Reg(isa.RZero), func() {
			v := f.Reg()
			f.Load(v, p, 0, 8)
			f.Checksum(v)
		}, nil)
	})
}

// drainRing frees every live pointer in the ring.
func drainRing(f *prog.Function, ring prog.Reg, ringN int64) {
	f.ForRangeI(ringN, func(i prog.Reg) {
		slot := f.Reg()
		old := f.Reg()
		f.ShlI(slot, i, 3)
		f.Add(slot, slot, ring)
		f.Load(old, slot, 0, 8)
		f.If(isa.OpBne, old, prog.Reg(isa.RZero), func() {
			f.CallFree(old)
			f.Store(slot, 0, prog.Reg(isa.RZero), 8)
		}, nil)
	})
}
