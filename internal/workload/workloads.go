package workload

import (
	"fmt"

	"rest/internal/isa"
	"rest/internal/prog"
)

// Workload is one synthetic benchmark.
type Workload struct {
	Name string
	// Description summarizes the modelled program behaviour and which SPEC
	// trait it reproduces.
	Description string
	// AllocRate is the approximate target allocation rate in mallocs per
	// kilo-instruction (the paper's calibration axis for allocator
	// overhead; §VI-B).
	AllocRate float64
	// Build returns the program builder for the given scale factor
	// (scale 1 ≈ 10^5 dynamic user instructions).
	Build func(scale int64) func(b *prog.Builder)
}

// All returns the 12 workloads of Figures 3/7/8 in the paper's order.
func All() []Workload {
	return []Workload{
		bzip2(), gobmk(), gcc(), libquantum(), astar(), h264(),
		lbm(), namd(), sjeng(), soplex(), xalanc(), hmmer(),
	}
}

// ByName looks a workload up.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Names lists all workload names.
func Names() []string {
	ws := All()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

// bzip2: block compression — sequential scans of a block buffer with
// data-dependent bit-twiddling branches and block memcpys; a handful of
// buffer allocations only.
func bzip2() Workload { return bzip2Input("bzip2", 12345) }

// bzip2Input builds bzip2 over a specific input (seed drives the block
// contents and coding decisions — the per-input bars of Figure 7).
func bzip2Input(name string, seed int64) Workload {
	return Workload{
		Name:        name,
		Description: "block transform: sequential scans, branchy bit coding, block copies",
		AllocRate:   0.001,
		Build: func(scale int64) func(b *prog.Builder) {
			return func(b *prog.Builder) {
				huff := b.Func("huff")
				{
					// Per-block coding scratch table on the stack (a vulnerable
					// buffer: protecting passes bookend it every call).
					tbl := huff.Buffer(128, true)
					p := huff.Reg()
					x := huff.Reg()
					huff.Mov(x, prog.Reg(20)) // RArg0 = block seed
					huff.BufAddr(p, tbl, 0)
					huff.ForRangeI(16, func(i prog.Reg) {
						q := huff.Reg()
						huff.ShlI(q, i, 3)
						huff.Add(q, q, p)
						huff.Store(q, 0, x, 8)
					})
					v := huff.Reg()
					huff.Load(v, p, 64, 8)
					huff.Checksum(v)
				}
				f := b.Func("main")
				src := f.Reg()
				dst := f.Reg()
				x := f.Reg()
				const blockN = 2048 // 16KB block
				allocArray(f, src, blockN)
				allocArray(f, dst, blockN)
				initArray(f, src, blockN, 0x9E37, 3)
				f.MovI(x, 12345)
				f.ForRangeI(6*scale, func(prog.Reg) {
					// Transform pass: read, conditional emit, write.
					f.ForRangeI(blockN/4, func(i prog.Reg) {
						p := f.Reg()
						v := f.Reg()
						f.ShlI(p, i, 3)
						f.Add(p, p, src)
						f.Load(v, p, 0, 8)
						f.Xor(v, v, x)
						f.If(isa.OpBlt, v, x, func() {
							f.AddI(v, v, 1)
						}, nil)
						f.Sub(p, p, src)
						f.Add(p, p, dst)
						f.Store(p, 0, v, 8)
						f.Checksum(v)
					})
					branchyLCG(f, x, 64)
					// Per-block entropy coding with a stack scratch table.
					f.Mov(prog.Reg(20), x)
					f.Call("huff")
					// Block copy of the coded output.
					n := f.Reg()
					f.MovI(n, 1024)
					f.CallMemcpy(src, dst, n)
				})
			}
		},
	}
}

// gobmk: game-tree search — deep call chains and history-resistant branches
// over a small board; almost no heap use.
func gobmk() Workload { return gobmkPosition("gobmk", 777) }

// gobmkPosition builds gobmk over a specific test position (seed drives the
// searched positions — the per-input bars of Figure 7).
func gobmkPosition(name string, seed int64) Workload {
	return Workload{
		Name:        name,
		Description: "game tree: call-heavy, unpredictable branches, small board reads",
		AllocRate:   0.0005,
		Build: func(scale int64) func(b *prog.Builder) {
			return func(b *prog.Builder) {
				eval := b.Func("eval")
				{
					board := eval.Buffer(512, true)
					p := eval.Reg()
					x := eval.Reg()
					eval.Mov(x, prog.Reg(20)) // seed from RArg0
					eval.BufAddr(p, board, 0)
					// Touch a few board squares, branch on contents.
					eval.ForRangeI(8, func(i prog.Reg) {
						q := eval.Reg()
						v := eval.Reg()
						eval.OpI(isa.OpMulI, q, i, 56)
						eval.AndI(q, q, 511-7)
						eval.Add(q, q, p)
						eval.Store(q, 0, x, 8)
						eval.Load(v, q, 0, 8)
						eval.Checksum(v)
					})
					branchyLCG(eval, x, 20)
				}
				f := b.Func("main")
				x := f.Reg()
				f.MovI(x, seed)
				f.ForRangeI(220*scale, func(i prog.Reg) {
					f.OpI(isa.OpMulI, x, x, lcgMul)
					f.AddI(x, x, lcgAdd)
					f.Mov(prog.Reg(20), x) // RArg0 = position seed
					f.Call("eval")
				})
			}
		},
	}
}

// gcc: compiler IR churn — frequent small allocations linked into lists,
// short pointer walks, batch frees (high allocator pressure).
func gcc() Workload {
	return Workload{
		Name:        "gcc",
		Description: "IR building: frequent small allocations, list walks, batch frees",
		AllocRate:   0.1,
		Build: func(scale int64) func(b *prog.Builder) {
			return func(b *prog.Builder) {
				f := b.Func("main")
				ring := f.Reg()
				x := f.Reg()
				const ringN = 128
				allocArray(f, ring, ringN)
				f.MovI(x, 42)
				f.ForRangeI(3*scale, func(prog.Reg) {
					ringChurn(f, ring, ringN, 96, 12)
					// Analysis passes between allocation bursts: IR walks,
					// branchy pattern matching, constant folding.
					walkRing(f, ring, ringN)
					walkRing(f, ring, ringN)
					walkRing(f, ring, ringN)
					branchyLCG(f, x, 700)
					compute(f, x, 1400)
				})
				drainRing(f, ring, ringN)
				f.CallFree(ring)
			}
		},
	}
}

// libquantum: gate simulation — long streaming sweeps over one large array;
// a single allocation.
func libquantum() Workload {
	return Workload{
		Name:        "libquantum",
		Description: "streaming: repeated full-array sweeps, trivial control flow",
		AllocRate:   0.0001,
		Build: func(scale int64) func(b *prog.Builder) {
			return func(b *prog.Builder) {
				f := b.Func("main")
				reg := f.Reg()
				const qn = 8192 // 64KB state vector
				allocArray(f, reg, qn)
				initArray(f, reg, qn, 11, 1)
				f.ForRangeI(3*scale, func(prog.Reg) {
					// Gate application: read-modify-write sweep.
					f.ForRangeI(qn/2, func(i prog.Reg) {
						p := f.Reg()
						v := f.Reg()
						f.ShlI(p, i, 4) // every other element
						f.Add(p, p, reg)
						f.Load(v, p, 0, 8)
						f.OpI(isa.OpXorI, v, v, 0x5A5A)
						f.Store(p, 0, v, 8)
					})
					sumArray(f, reg, 512)
				})
			}
		},
	}
}

// astar: path search — pointer chasing through a graph permutation with
// branchy successor selection and periodic node allocations.
func astar() Workload {
	return Workload{
		Name:        "astar",
		Description: "path search: pointer chasing, branchy, periodic node allocations",
		AllocRate:   0.02,
		Build: func(scale int64) func(b *prog.Builder) {
			return func(b *prog.Builder) {
				f := b.Func("main")
				graph := f.Reg()
				ring := f.Reg()
				idx := f.Reg()
				x := f.Reg()
				const graphN = 16384 // 128KB graph
				const ringN = 32
				allocArray(f, graph, graphN)
				allocArray(f, ring, ringN)
				initPermutation(f, graph, graphN, 6151)
				f.MovI(idx, 1)
				f.MovI(x, 9)
				f.ForRangeI(12*scale, func(prog.Reg) {
					chase(f, graph, idx, 400)
					branchyLCG(f, x, 100)
					ringChurn(f, ring, ringN, 64, 4)
				})
				drainRing(f, ring, ringN)
				f.CallFree(ring)
			}
		},
	}
}

// h264: video coding — dense block memcpys (motion compensation) plus
// residual computation sweeps; few allocations.
func h264() Workload {
	return Workload{
		Name:        "h264",
		Description: "video: block memcpy-heavy with residual sweeps",
		AllocRate:   0.001,
		Build: func(scale int64) func(b *prog.Builder) {
			return func(b *prog.Builder) {
				f := b.Func("main")
				ref := f.Reg()
				cur := f.Reg()
				const frameN = 8192 // 64KB frame
				allocArray(f, ref, frameN)
				allocArray(f, cur, frameN)
				initArray(f, ref, frameN, 3, 7)
				f.ForRangeI(12*scale, func(prog.Reg) {
					blockCopies(f, cur, ref, 256, 64)
					sumArray(f, cur, 256)
				})
			}
		},
	}
}

// lbm: fluid stencil — pure grid sweeps, two allocations total.
func lbm() Workload {
	return Workload{
		Name:        "lbm",
		Description: "stencil: grid sweeps, negligible allocation",
		AllocRate:   0.00005,
		Build: func(scale int64) func(b *prog.Builder) {
			return func(b *prog.Builder) {
				f := b.Func("main")
				a := f.Reg()
				bb := f.Reg()
				const gridN = 8192 // 64KB per grid
				allocArray(f, a, gridN)
				allocArray(f, bb, gridN)
				initArray(f, a, gridN, 5, 1)
				f.ForRangeI(4*scale, func(prog.Reg) {
					stencil(f, bb, a, gridN/2)
					stencil(f, a, bb, gridN/2)
					sumArray(f, a, 64)
				})
			}
		},
	}
}

// namd: molecular dynamics — multiply-add dependency chains with modest
// strided loads; negligible allocation.
func namd() Workload {
	return Workload{
		Name:        "namd",
		Description: "compute-bound: mul/add chains, light memory traffic",
		AllocRate:   0.0001,
		Build: func(scale int64) func(b *prog.Builder) {
			return func(b *prog.Builder) {
				f := b.Func("main")
				coords := f.Reg()
				acc := f.Reg()
				const n = 2048
				allocArray(f, coords, n)
				initArray(f, coords, n, 13, 5)
				f.MovI(acc, 1)
				f.ForRangeI(30*scale, func(prog.Reg) {
					compute(f, acc, 800)
					f.ForRangeI(128, func(i prog.Reg) {
						p := f.Reg()
						v := f.Reg()
						f.ShlI(p, i, 7) // stride-16 elements
						f.AndI(p, p, (n-1)*8)
						f.Add(p, p, coords)
						f.Load(v, p, 0, 8)
						f.Add(acc, acc, v)
					})
					f.Checksum(acc)
				})
			}
		},
	}
}

// sjeng: chess — random transposition-table probes and unpredictable
// branches; fewer than 10 allocations (§VI-B).
func sjeng() Workload {
	return Workload{
		Name:        "sjeng",
		Description: "chess: random hash-table probes, unpredictable branches",
		AllocRate:   0.00005,
		Build: func(scale int64) func(b *prog.Builder) {
			return func(b *prog.Builder) {
				f := b.Func("main")
				table := f.Reg()
				x := f.Reg()
				const tblN = 32768 // 256KB transposition table
				allocArray(f, table, tblN)
				initArray(f, table, tblN, lcgMul, 99)
				f.MovI(x, 31337)
				f.ForRangeI(12*scale, func(prog.Reg) {
					hashProbes(f, table, x, tblN, 300)
					branchyLCG(f, x, 150)
				})
			}
		},
	}
}

// soplex: LP solving — row dot-product sweeps with multiply pressure and a
// low rate of workspace allocations.
func soplex() Workload {
	return Workload{
		Name:        "soplex",
		Description: "LP: row sweeps with multiplies, occasional workspace allocs",
		AllocRate:   0.01,
		Build: func(scale int64) func(b *prog.Builder) {
			return func(b *prog.Builder) {
				f := b.Func("main")
				mat := f.Reg()
				ring := f.Reg()
				const rows = 64
				const cols = 256
				const ringN = 16
				allocArray(f, mat, rows*cols)
				allocArray(f, ring, ringN)
				initArray(f, mat, rows*cols, 3, 1)
				f.ForRangeI(3*scale, func(prog.Reg) {
					f.ForRangeI(rows, func(r prog.Reg) {
						rowBase := f.Reg()
						acc := f.Reg()
						f.OpI(isa.OpMulI, rowBase, r, cols*8)
						f.Add(rowBase, rowBase, mat)
						f.MovI(acc, 0)
						f.ForRangeI(cols, func(c prog.Reg) {
							p := f.Reg()
							v := f.Reg()
							f.ShlI(p, c, 3)
							f.Add(p, p, rowBase)
							f.Load(v, p, 0, 8)
							f.OpI(isa.OpMulI, v, v, 17)
							f.Add(acc, acc, v)
						})
						f.Checksum(acc)
					})
					ringChurn(f, ring, ringN, 512, 6)
				})
				drainRing(f, ring, ringN)
				f.CallFree(ring)
			}
		},
	}
}

// xalanc: XSLT processing — the allocation-heaviest workload (≈0.2 mallocs
// per kilo-instruction): constant small-node churn plus short string copies.
func xalanc() Workload {
	return Workload{
		Name:        "xalanc",
		Description: "XML transform: highest allocation rate, small nodes, string copies",
		AllocRate:   0.2,
		Build: func(scale int64) func(b *prog.Builder) {
			return func(b *prog.Builder) {
				f := b.Func("main")
				ring := f.Reg()
				strbuf := f.Reg()
				x := f.Reg()
				doc := f.Reg()
				const ringN = 256
				const docN = 3072
				allocArray(f, ring, ringN)
				allocArray(f, strbuf, 64) // 512B string staging area
				allocArray(f, doc, docN)
				initArray(f, strbuf, 64, 7, 2)
				initArray(f, doc, docN, 31, 5)
				f.MovI(x, 5)
				f.ForRangeI(3*scale, func(prog.Reg) {
					// Node churn burst: DOM node allocation/free.
					ringChurn(f, ring, ringN, 128, 48)
					// Tree walks over the live nodes and document scans: the
					// access-dense phases that make ASan's per-access checks
					// dominate on this benchmark.
					walkRing(f, ring, ringN)
					sumArray(f, doc, docN)
					walkRing(f, ring, ringN)
					sumArray(f, doc, docN)
					// Short text copies between staging areas.
					f.ForRangeI(16, func(i prog.Reg) {
						d := f.Reg()
						s := f.Reg()
						nn := f.Reg()
						f.ShlI(d, i, 4)
						f.Add(s, strbuf, d)
						f.AddI(d, s, 128)
						f.MovI(nn, 48)
						f.CallMemcpy(d, s, nn)
					})
					branchyLCG(f, x, 120)
				})
				drainRing(f, ring, ringN)
				f.CallFree(ring)
			}
		},
	}
}

// hmmer: profile HMM search — dynamic-programming row sweeps with max
// selection branches; few allocations.
func hmmer() Workload {
	return Workload{
		Name:        "hmmer",
		Description: "HMM DP: row sweeps with max-select branches",
		AllocRate:   0.001,
		Build: func(scale int64) func(b *prog.Builder) {
			return func(b *prog.Builder) {
				norm := b.Func("norm")
				{
					scratch := norm.Buffer(64, true)
					p := norm.Reg()
					v := norm.Reg()
					norm.BufAddr(p, scratch, 0)
					norm.Mov(v, prog.Reg(20))
					norm.Store(p, 0, v, 8)
					norm.Load(v, p, 0, 8)
					norm.Checksum(v)
				}
				f := b.Func("main")
				prev := f.Reg()
				cur := f.Reg()
				const rowN = 1024
				allocArray(f, prev, rowN)
				allocArray(f, cur, rowN)
				initArray(f, prev, rowN, 9, 4)
				f.ForRangeI(16*scale, func(prog.Reg) {
					f.ForRangeI(rowN-1, func(i prog.Reg) {
						p := f.Reg()
						a := f.Reg()
						bb := f.Reg()
						f.ShlI(p, i, 3)
						f.Add(p, p, prev)
						f.Load(a, p, 0, 8)
						f.Load(bb, p, 8, 8)
						// max(a,b) + i
						f.If(isa.OpBlt, a, bb, func() {
							f.Mov(a, bb)
						}, nil)
						f.Add(a, a, i)
						f.Sub(p, p, prev)
						f.Add(p, p, cur)
						f.Store(p, 0, a, 8)
					})
					// Row normalization with stack scratch, then swap via copy.
					f.Mov(prog.Reg(20), prog.RRes)
					f.Call("norm")
					nn := f.Reg()
					f.MovI(nn, rowN*8)
					f.CallMemcpy(prev, cur, nn)
					sumArray(f, cur, 32)
				})
			}
		},
	}
}
