package workload_test

import (
	"testing"

	"rest/internal/core"
	"rest/internal/prog"
	"rest/internal/workload"
	"rest/internal/world"
)

func runWL(t *testing.T, wl workload.Workload, pass prog.PassConfig, scale int64) (world.Outcome, *world.World) {
	t.Helper()
	w, err := world.Build(world.Spec{Pass: pass, Mode: core.Secure}, wl.Build(scale))
	if err != nil {
		t.Fatalf("%s: world.Build: %v", wl.Name, err)
	}
	out := w.RunFunctional()
	if out.Err != nil {
		t.Fatalf("%s: run error: %v", wl.Name, out.Err)
	}
	return out, w
}

func TestAllWorkloadsCleanAndConsistent(t *testing.T) {
	passes := map[string]prog.PassConfig{
		"plain":     prog.Plain(),
		"asan":      prog.ASanFull(),
		"rest-full": prog.RESTFull(64),
		"rest-heap": prog.RESTHeap(64),
		"perfecthw": prog.PerfectHWFull(),
	}
	for _, wl := range workload.All() {
		var ref uint64
		haveRef := false
		for pname, pass := range passes {
			out, _ := runWL(t, wl, pass, 1)
			if out.Detected() {
				t.Errorf("%s/%s: spurious detection: %s", wl.Name, pname, out)
				continue
			}
			if !haveRef {
				ref, haveRef = out.Checksum, true
			} else if out.Checksum != ref {
				t.Errorf("%s/%s: checksum %d != reference %d", wl.Name, pname, out.Checksum, ref)
			}
		}
	}
}

func TestWorkloadScalesInstructionCount(t *testing.T) {
	wl, err := workload.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	_, w1 := runWL(t, wl, prog.Plain(), 1)
	_, w3 := runWL(t, wl, prog.Plain(), 3)
	n1, n3 := w1.Machine.UserInstrs, w3.Machine.UserInstrs
	if n3 < 2*n1 {
		t.Errorf("scale 3 instructions (%d) not ~3x scale 1 (%d)", n3, n1)
	}
}

func TestWorkloadSizes(t *testing.T) {
	// Every workload must be big enough to be meaningful and small enough
	// to keep the full experiment matrix tractable.
	for _, wl := range workload.All() {
		_, w := runWL(t, wl, prog.Plain(), 1)
		n := w.Machine.UserInstrs
		if n < 30_000 {
			t.Errorf("%s: only %d user instructions at scale 1, want >= 30k", wl.Name, n)
		}
		if n > 3_000_000 {
			t.Errorf("%s: %d user instructions at scale 1, want <= 3M", wl.Name, n)
		}
	}
}

func TestAllocationRateOrdering(t *testing.T) {
	// The calibration axis of the evaluation: xalanc must allocate the
	// most per instruction, gcc next; lbm/sjeng/namd near zero (§VI-B).
	// Rates are computed against total executed operations (user + runtime
	// micro-ops), the analog of the paper's per-instruction metric. Our
	// simulated runs are ~10^4x shorter than SPEC's, so the alloc-heavy
	// workloads run denser than the paper's 0.2/kinstr to keep allocator
	// pressure visible; the ordering and the near-zero tail match §VI-B.
	rates := map[string]float64{}
	mallocs := map[string]uint64{}
	for _, wl := range workload.All() {
		_, w := runWL(t, wl, prog.Plain(), 1)
		st := w.Alloc.Stats()
		total := float64(w.Machine.UserInstrs + w.Machine.RTOps)
		rates[wl.Name] = float64(st.Mallocs) / (total / 1000)
		mallocs[wl.Name] = st.Mallocs
	}
	if !(rates["xalanc"] > rates["gcc"] && rates["gcc"] > rates["lbm"]) {
		t.Errorf("alloc rate ordering wrong: xalanc=%.3f gcc=%.3f lbm=%.4f",
			rates["xalanc"], rates["gcc"], rates["lbm"])
	}
	if rates["xalanc"] < 0.2 || rates["xalanc"] > 15 {
		t.Errorf("xalanc alloc rate = %.3f/kinstr out of expected band", rates["xalanc"])
	}
	// Paper: lbm and sjeng make fewer than 10 allocation calls.
	for _, name := range []string{"lbm", "sjeng"} {
		if mallocs[name] >= 10 {
			t.Errorf("%s mallocs = %d, want < 10", name, mallocs[name])
		}
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := workload.ByName("spec2017"); err == nil {
		t.Error("unknown workload accepted")
	}
	if len(workload.Names()) != 12 {
		t.Errorf("workload count = %d, want 12", len(workload.Names()))
	}
}

func TestBoundedArenaResidue(t *testing.T) {
	// Workloads drain their churn structures; only a handful of long-lived
	// arena arrays stay live at exit (real SPEC programs likewise exit
	// without freeing their arenas). The token state must stay consistent
	// throughout.
	for _, wl := range workload.All() {
		_, w := runWL(t, wl, prog.RESTFull(64), 1)
		st := w.Alloc.Stats()
		if residue := st.Mallocs - st.Frees; residue > 6 {
			t.Errorf("%s: %d chunks live at exit (mallocs=%d frees=%d), want <= 6",
				wl.Name, residue, st.Mallocs, st.Frees)
		}
		if err := w.Tracker.VerifyConsistency(); err != nil {
			t.Errorf("%s: %v", wl.Name, err)
		}
	}
}
