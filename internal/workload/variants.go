package workload

import (
	"fmt"
)

// Figure 7's x-axis shows multiple bars per benchmark, one per SPEC test
// input (bzip2 runs its program/dryer inputs; gobmk runs the capture,
// connect, connect_rots, connection, connection_rots, cutstone and dniwog
// test positions). We reproduce the expansion by deriving input variants
// that perturb the workload's data seed — same program, different input.

// variantSeeds maps base workloads to their per-input variant names.
var variantSeeds = map[string][]string{
	"bzip2": {"input", "2", "dryer"},
	"gobmk": {"capture", "connect", "connect_rots", "connection",
		"connection_rots", "cutstone", "dniwog"},
}

// seedHash derives a deterministic data seed from a variant name.
func seedHash(name string) int64 {
	h := int64(1469598103934665603)
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h%100_000 + 3
}

// AllVariants expands the suite to Figure 7's full x-axis: one entry per
// benchmark input. Input variants rebuild the workload with a data seed
// derived from the input name, so contents, branch outcomes and search
// positions differ per input exactly as SPEC test inputs do.
func AllVariants() []Workload {
	var out []Workload
	for _, wl := range All() {
		names := variantSeeds[wl.Name]
		if len(names) == 0 {
			out = append(out, wl)
			continue
		}
		for _, n := range names {
			full := fmt.Sprintf("%s-%s", wl.Name, n)
			switch wl.Name {
			case "bzip2":
				out = append(out, bzip2Input(full, seedHash(n)))
			case "gobmk":
				out = append(out, gobmkPosition(full, seedHash(n)))
			}
		}
	}
	return out
}

// VariantNames lists the expanded benchmark-input names in order.
func VariantNames() []string {
	ws := AllVariants()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}
