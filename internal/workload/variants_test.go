package workload_test

import (
	"strings"
	"testing"

	"rest/internal/prog"
	"rest/internal/workload"
)

func TestAllVariantsExpansion(t *testing.T) {
	vs := workload.AllVariants()
	// 12 base − 2 expanded + 3 bzip2 inputs + 7 gobmk positions = 20 bars.
	if len(vs) != 20 {
		t.Fatalf("variants = %d, want 20", len(vs))
	}
	names := strings.Join(workload.VariantNames(), " ")
	for _, want := range []string{"bzip2-input", "bzip2-dryer", "gobmk-connect",
		"gobmk-cutstone", "gobmk-dniwog", "xalanc", "lbm"} {
		if !strings.Contains(names, want) {
			t.Errorf("variant list missing %q", want)
		}
	}
}

func TestVariantsDiffer(t *testing.T) {
	// Different inputs must execute different dynamic work (checksums and
	// instruction counts diverge), while each stays clean under REST.
	vs := workload.AllVariants()
	byName := map[string]workload.Workload{}
	for _, v := range vs {
		byName[v.Name] = v
	}
	a, _ := runWL(t, byName["gobmk-connect"], prog.Plain(), 1)
	b, _ := runWL(t, byName["gobmk-dniwog"], prog.Plain(), 1)
	if a.Checksum == b.Checksum {
		t.Error("two gobmk positions computed identical checksums")
	}
	// Each variant is deterministic.
	a2, _ := runWL(t, byName["gobmk-connect"], prog.Plain(), 1)
	if a.Checksum != a2.Checksum {
		t.Error("variant not deterministic")
	}
}

func TestVariantsCleanUnderREST(t *testing.T) {
	for _, v := range workload.AllVariants() {
		if !strings.Contains(v.Name, "-") {
			continue // base workloads covered elsewhere
		}
		out, w := runWL(t, v, prog.RESTFull(64), 1)
		if out.Detected() {
			t.Errorf("%s: spurious detection: %s", v.Name, out)
		}
		if err := w.Tracker.VerifyConsistency(); err != nil {
			t.Errorf("%s: %v", v.Name, err)
		}
	}
}
