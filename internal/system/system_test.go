package system

import (
	"bytes"
	"testing"

	"rest/internal/core"
)

func TestSpawnUniqueTokens(t *testing.T) {
	os := NewOS(1)
	a, err := os.Spawn(core.Width64, core.Secure)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.Spawn(core.Width64, core.Secure)
	if err != nil {
		t.Fatal(err)
	}
	if a.PID == b.PID {
		t.Error("duplicate PIDs")
	}
	if bytes.Equal(a.Reg.Value(), b.Reg.Value()) {
		t.Error("two processes drew the same token")
	}
}

func TestContextSwitchSwapsRegister(t *testing.T) {
	os := NewOS(2)
	a, _ := os.Spawn(core.Width64, core.Secure)
	b, _ := os.Spawn(core.Width64, core.Secure)
	if err := os.Schedule(a); err != nil {
		t.Fatal(err)
	}
	if os.HW.Current() != a.Reg {
		t.Error("hardware register not A's after scheduling A")
	}
	os.Schedule(b)
	if os.HW.Current() != b.Reg {
		t.Error("hardware register not B's after scheduling B")
	}
	if os.ContextSwitches != 2 {
		t.Errorf("ContextSwitches = %d, want 2", os.ContextSwitches)
	}
	// Register updates happen via privileged 8-byte stores: 64B token = 8.
	if os.HW.PrivilegedWrites() != 16 {
		t.Errorf("privileged writes = %d, want 16", os.HW.PrivilegedWrites())
	}
	outsider := &Process{PID: 999}
	if err := os.Schedule(outsider); err == nil {
		t.Error("scheduled unknown process")
	}
}

func TestPerProcessIsolation(t *testing.T) {
	// §V-B: a process's tokens are only live when its register is
	// installed; another process's detector sees them as inert data.
	os := NewOS(3)
	a, _ := os.Spawn(core.Width64, core.Secure)
	b, _ := os.Spawn(core.Width64, core.Secure)
	a.Tracker.Arm(0x1000, 0)

	os.Schedule(a)
	if !os.DetectorView(a, 0x1010) {
		t.Error("A's token not detected while A runs")
	}
	os.Schedule(b)
	// B's address space has nothing at 0x1000; even if it mapped A's page,
	// the installed register is B's, so A's token bytes do not match.
	b.Mem.Write(0x1000, a.Reg.Value()) // simulate a shared/IPC'd page
	if os.DetectorView(b, 0x1010) {
		t.Error("A's token flagged under B's register: isolation broken")
	}
	// But B's OWN tokens are detected.
	b.Tracker.Arm(0x2000, 0)
	if !os.DetectorView(b, 0x2000) {
		t.Error("B's token not detected while B runs")
	}
}

func TestCloneReArmsBlacklist(t *testing.T) {
	os := NewOS(4)
	parent, _ := os.Spawn(core.Width64, core.Secure)
	parent.Mem.WriteUint(0x3000, 8, 0xABCD)
	parent.Tracker.Arm(0x4000, 0)
	parent.Tracker.Arm(0x4040, 0)

	child, err := os.Clone(parent, [][2]uint64{{0x3000, 0x5000}})
	if err != nil {
		t.Fatal(err)
	}
	// Data copied.
	if got := child.Mem.ReadUint(0x3000, 8); got != 0xABCD {
		t.Errorf("child data = %#x, want 0xABCD", got)
	}
	// The child's blacklist is re-armed under the CHILD token.
	if child.Tracker.ArmedCount() != 2 {
		t.Fatalf("child armed = %d, want 2", child.Tracker.ArmedCount())
	}
	if !child.Mem.Equal(0x4000, child.Reg.Value()) {
		t.Error("child chunk holds parent token, not child token")
	}
	if err := child.Tracker.VerifyConsistency(); err != nil {
		t.Error(err)
	}
	// Child detector flags the inherited blacklist.
	os.Schedule(child)
	if !os.DetectorView(child, 0x4040) {
		t.Error("inherited blacklist not live in the child")
	}
	if os.RearmedChunks != 2 {
		t.Errorf("RearmedChunks = %d, want 2", os.RearmedChunks)
	}
}

func TestRotationKeepsBlacklistLive(t *testing.T) {
	os := NewOS(5)
	p, _ := os.Spawn(core.Width64, core.Secure)
	os.Schedule(p)
	p.Tracker.Arm(0x6000, 0)
	old := append([]byte(nil), p.Reg.Value()...)

	os.RotateToken(p)
	if bytes.Equal(old, p.Reg.Value()) {
		t.Fatal("rotation did not change the token")
	}
	// The blacklist survives: content rebound and still detected.
	if err := p.Tracker.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	if !os.DetectorView(p, 0x6000) {
		t.Error("armed chunk not detected after rotation")
	}
	// The stale value is dead: planting the OLD token is inert data now.
	p.Mem.Write(0x7000, old)
	if os.DetectorView(p, 0x7000) {
		t.Error("stale token value still detected after rotation")
	}
	if os.Rotations != 1 || os.RearmedChunks != 1 {
		t.Errorf("stats = %d rotations / %d rearms, want 1/1", os.Rotations, os.RearmedChunks)
	}
}

func TestCloneWithoutRearmWouldLoseBlacklist(t *testing.T) {
	// Demonstrate WHY the re-arm pass exists: raw copied token bytes do not
	// match the child's register.
	os := NewOS(6)
	parent, _ := os.Spawn(core.Width64, core.Secure)
	parent.Tracker.Arm(0x8000, 0)
	child, _ := os.Spawn(core.Width64, core.Secure)
	// Naive copy without re-arm:
	buf := make([]byte, 64)
	parent.Mem.Read(0x8000, buf)
	child.Mem.Write(0x8000, buf)
	os.Schedule(child)
	if os.DetectorView(child, 0x8000) {
		t.Error("parent token bytes detected under child register (should be inert)")
	}
}
