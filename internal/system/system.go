// Package system implements the paper's system-level support (§IV-B).
//
// The paper proposes two deployment models for the token value:
//
//  1. A single system-wide token, rotated periodically (e.g. at reboot).
//     Heap-only protection supports rotation without recompilation because
//     the allocator's armed regions can be re-written by privileged code.
//  2. A unique token per process, with the OS (a) writing the token
//     configuration register on every context switch via privileged
//     memory-mapped stores, and (b) dealing with tokens from other
//     processes when address spaces are cloned or shared.
//
// This package models that OS layer: processes with private address spaces
// and token values, a context-switch path that swaps the hardware token
// register, fork-style cloning (which must re-arm the child's inherited
// blacklist with the child's token), and token rotation (which must rebind
// every armed chunk).
package system

import (
	"fmt"
	"math/rand"

	"rest/internal/core"
	"rest/internal/mem"
)

// TokenHW models the hardware's single token configuration register and the
// privilege boundary around it: only the OS (this package) may set it, via
// the memory-mapped update path (§III-A "Setting the token value is done
// through a store instruction that writes to a memory-mapped address ...
// only ... by a higher privileged mode").
type TokenHW struct {
	current *core.TokenRegister
	writes  uint64
}

// LoadContext installs a process's token register (a context-switch step).
func (hw *TokenHW) LoadContext(reg *core.TokenRegister) {
	// The 64-byte value is written in 8-byte privileged stores.
	hw.writes += uint64(len(reg.Value()) / 8)
	hw.current = reg
}

// Current returns the installed register (what the detector compares with).
func (hw *TokenHW) Current() *core.TokenRegister { return hw.current }

// PrivilegedWrites reports how many memory-mapped register stores occurred.
func (hw *TokenHW) PrivilegedWrites() uint64 { return hw.writes }

// Process is one OS process: a private address space with its own token.
type Process struct {
	PID     int
	Mem     *mem.Memory
	Reg     *core.TokenRegister
	Tracker *core.TokenTracker
}

// OS manages processes and the token hardware.
type OS struct {
	HW      TokenHW
	rng     *rand.Rand
	nextPID int
	procs   map[int]*Process
	running *Process

	// Stats.
	ContextSwitches uint64
	Clones          uint64
	Rotations       uint64
	RearmedChunks   uint64
}

// NewOS boots an OS with a deterministic token source.
func NewOS(seed int64) *OS {
	return &OS{
		rng:     rand.New(rand.NewSource(seed)),
		nextPID: 1,
		procs:   make(map[int]*Process),
	}
}

// Spawn creates a fresh process with its own address space and token.
func (os *OS) Spawn(width core.Width, mode core.Mode) (*Process, error) {
	reg, err := core.NewTokenRegister(width, mode, os.rng)
	if err != nil {
		return nil, err
	}
	m := mem.New()
	p := &Process{
		PID:     os.nextPID,
		Mem:     m,
		Reg:     reg,
		Tracker: core.NewTokenTracker(reg, m),
	}
	os.nextPID++
	os.procs[p.PID] = p
	return p, nil
}

// Schedule context-switches to p: the token configuration register is
// reloaded with p's token so the detector flags p's blacklist and nobody
// else's.
func (os *OS) Schedule(p *Process) error {
	if os.procs[p.PID] != p {
		return fmt.Errorf("system: unknown process %d", p.PID)
	}
	os.HW.LoadContext(p.Reg)
	os.running = p
	os.ContextSwitches++
	return nil
}

// Running returns the scheduled process.
func (os *OS) Running() *Process { return os.running }

// Clone forks parent into a new process: the address space (including any
// token content) is copied, the child draws a fresh token, and — the §IV-B
// obligation — every armed chunk inherited from the parent is re-armed with
// the child's token so the child's detector still covers the blacklist.
// regions is the list of [start,end) address ranges to copy.
func (os *OS) Clone(parent *Process, regions [][2]uint64) (*Process, error) {
	child, err := os.Spawn(parent.Reg.Width(), parent.Reg.Mode())
	if err != nil {
		return nil, err
	}
	os.Clones++
	buf := make([]byte, 1<<16)
	for _, r := range regions {
		for a := r[0]; a < r[1]; {
			n := uint64(len(buf))
			if r[1]-a < n {
				n = r[1] - a
			}
			parent.Mem.Read(a, buf[:n])
			child.Mem.Write(a, buf[:n])
			a += n
		}
	}
	// Re-arm the inherited blacklist under the child's token. Without this
	// pass the copied parent-token bytes are inert data in the child (its
	// detector compares against the child token) and the blacklist would
	// silently vanish.
	for _, a := range parent.Tracker.ArmedChunks() {
		if exc := child.Tracker.Arm(a, 0); exc != nil {
			return nil, fmt.Errorf("system: re-arming clone: %v", exc)
		}
		os.RearmedChunks++
	}
	return child, nil
}

// RotateToken draws a fresh token for p (the paper's periodic rotation,
// e.g. at reboot) and rebinds every armed chunk to the new value so the
// blacklist survives the rotation.
func (os *OS) RotateToken(p *Process) {
	p.Reg.Rotate(os.rng)
	p.Tracker.Rebind()
	os.Rotations++
	os.RearmedChunks += uint64(p.Tracker.ArmedCount())
	if os.running == p {
		os.HW.LoadContext(p.Reg)
	}
}

// DetectorView answers whether the CURRENTLY SCHEDULED hardware would flag
// an access by the running process to addr — i.e. whether the line content
// matches the installed token register. Cross-process probes model the
// §V-B isolation argument: process B's hardware does not flag process A's
// tokens because the register holds B's value.
func (os *OS) DetectorView(p *Process, addr uint64) bool {
	cur := os.HW.Current()
	if cur == nil {
		return false
	}
	line := addr &^ (core.LineBytes - 1)
	chunk := uint64(cur.Width())
	for a := line; a < line+core.LineBytes; a += chunk {
		if p.Mem.Equal(a, cur.Value()) {
			lo, hi := a, a+chunk
			if addr >= lo && addr < hi {
				return true
			}
		}
	}
	return false
}
