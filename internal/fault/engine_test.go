package fault

import (
	"testing"

	"rest/internal/sim"
)

// TestCampaignEngineDifferential pins that the §V verdict table is a
// property of the architecture, not of the interpreter: the same seed must
// produce a byte-identical campaign report whether the program-based
// scenarios run on the reference interpreter or the decoded-block engine.
func TestCampaignEngineDifferential(t *testing.T) {
	for _, seed := range []int64{1, 42, 1337} {
		ref, err := RunCampaign(Options{Seed: seed, Engine: sim.EngineRef})
		if err != nil {
			t.Fatalf("seed %d ref: %v", seed, err)
		}
		blk, err := RunCampaign(Options{Seed: seed, Engine: sim.EngineBlocks})
		if err != nil {
			t.Fatalf("seed %d blocks: %v", seed, err)
		}
		if r, b := ref.Render(), blk.Render(); r != b {
			t.Errorf("seed %d: campaign reports diverge across engines:\nref:\n%s\nblocks:\n%s", seed, r, b)
		}
		if r, b := ref.CSV(), blk.CSV(); r != b {
			t.Errorf("seed %d: campaign CSVs diverge across engines", seed)
		}
	}
}
