// Package fault is the deterministic fault-injection plane for the REST
// reproduction. It makes the paper's §V robustness analysis executable:
// every scenario perturbs a system the way a real-world fault or attack
// would — DRAM/cache-line bit flips, token loss on L1-D eviction, partial
// token overwrites inside armed redzones, forced token-value collisions,
// quarantine exhaustion and allocator metadata corruption — and is paired
// with the verdict the paper's analysis predicts: a raised REST exception,
// a silent loss of protection, or no effect at all.
//
// The campaign is seed-driven and fully deterministic: the same seed
// produces a byte-identical scenario list, byte-identical verdicts and
// byte-identical reports, so a surprising verdict can always be replayed.
package fault

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"rest/internal/obs"
	"rest/internal/sim"
)

// campaignEngine is the simulator engine the running campaign's
// program-based scenarios build their worlds with. Guarded by engineMu,
// which RunCampaign holds for the duration of a campaign.
var (
	engineMu       sync.Mutex
	campaignEngine sim.Engine
)

// Verdict classifies what the system did about an injected fault.
type Verdict int

const (
	// Benign: the fault neither raised an exception nor degraded
	// protection (e.g. a bit flip in clean data).
	Benign Verdict = iota
	// Detected: a REST exception or a software (allocator) violation was
	// raised. For collision scenarios this is a *spurious* detection — the
	// fail-safe direction.
	Detected
	// SilentMiss: protection was lost and nothing was reported. These are
	// the paper's documented false-negative windows (§V-B, §V-C).
	SilentMiss
)

// String names the verdict for reports.
func (v Verdict) String() string {
	switch v {
	case Detected:
		return "detected"
	case SilentMiss:
		return "silent-miss"
	default:
		return "benign"
	}
}

// Scenario is one injectable fault paired with its predicted outcome.
type Scenario struct {
	// Name identifies the scenario (stable; part of the report format).
	Name string
	// Section is the paper section whose analysis predicts the verdict.
	Section string
	// Description says what is injected and why the verdict follows.
	Description string
	// Expected is the verdict §V predicts.
	Expected Verdict
	// run injects the fault and observes the system's reaction. All
	// randomness (token values, fault sites, bit positions) must come from
	// rng so the campaign stays deterministic per seed.
	run func(rng *rand.Rand) (Verdict, string, error)
}

// Result is one executed scenario.
type Result struct {
	Scenario string
	Section  string
	Expected Verdict
	Observed Verdict
	// Detail records the concrete fault site/probe for replayability.
	Detail string
	// Err is a scenario execution error (rig failure — not a verdict).
	Err error
}

// Pass reports whether the observation matched the paper's prediction.
func (r Result) Pass() bool { return r.Err == nil && r.Observed == r.Expected }

// Options parameterizes a campaign run.
type Options struct {
	// Seed drives every random choice in the campaign. Identical seeds
	// yield byte-identical reports.
	Seed int64
	// Only, when non-empty, restricts the campaign to scenarios whose name
	// contains the substring.
	Only string
	// Engine selects the functional simulator engine for the program-based
	// scenarios (the architectural rigs probe the tracker directly and are
	// engine-independent). Verdicts are byte-identical across engines —
	// the engine differential tests pin it.
	Engine sim.Engine
}

// Campaign is one executed fault-injection sweep.
type Campaign struct {
	Seed    int64
	Results []Result
}

// RunCampaign executes every scenario in its fixed registration order. Each
// scenario draws from its own seed stream (derived from Options.Seed and
// the scenario's position), so adding a scenario never perturbs the
// randomness of those before it.
func RunCampaign(opt Options) (*Campaign, error) {
	// The engine choice reaches runProgram through a package variable; the
	// mutex serializes concurrent campaigns so the setting can never bleed
	// between them (campaigns are deterministic either way — both engines
	// yield identical verdicts — but the race detector rightly objects to
	// unsynchronized writes).
	engineMu.Lock()
	campaignEngine = opt.Engine
	defer func() {
		campaignEngine = sim.EngineAuto
		engineMu.Unlock()
	}()
	c := &Campaign{Seed: opt.Seed}
	for i, sc := range Scenarios() {
		if opt.Only != "" && !strings.Contains(sc.Name, opt.Only) {
			continue
		}
		rng := rand.New(rand.NewSource(opt.Seed ^ (int64(i+1) * 0x9E37_79B9_7F4A_7C1)))
		obs, detail, err := sc.run(rng)
		c.Results = append(c.Results, Result{
			Scenario: sc.Name,
			Section:  sc.Section,
			Expected: sc.Expected,
			Observed: obs,
			Detail:   detail,
			Err:      err,
		})
	}
	if len(c.Results) == 0 {
		return nil, fmt.Errorf("fault: no scenario matches %q; valid names:\n  %s",
			opt.Only, strings.Join(ScenarioNames(), "\n  "))
	}
	return c, nil
}

// ScenarioNames returns every registered scenario name in registration
// order (the -only validation surface).
func ScenarioNames() []string {
	scs := Scenarios()
	out := make([]string, len(scs))
	for i, sc := range scs {
		out[i] = sc.Name
	}
	return out
}

// ValidateOnly checks an Options.Only substring filter against the scenario
// registry before a campaign runs, so a typo fails fast with the list of
// valid names instead of silently running nothing.
func ValidateOnly(only string) error {
	if only == "" {
		return nil
	}
	for _, name := range ScenarioNames() {
		if strings.Contains(name, only) {
			return nil
		}
	}
	return fmt.Errorf("fault: no scenario matches %q; valid names:\n  %s",
		only, strings.Join(ScenarioNames(), "\n  "))
}

// FlushObs tallies the campaign's verdicts into the registry: one counter
// per verdict class plus the prediction mismatches — §V's coverage story as
// metrics.
func (c *Campaign) FlushObs(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Counter("fault.scenarios").Add(uint64(len(c.Results)))
	benign := r.Counter("fault.benign")
	detected := r.Counter("fault.detected")
	silent := r.Counter("fault.silent_misses")
	mismatch := r.Counter("fault.mismatches")
	for _, res := range c.Results {
		switch res.Observed {
		case Detected:
			detected.Inc()
		case SilentMiss:
			silent.Inc()
		default:
			benign.Inc()
		}
		if !res.Pass() {
			mismatch.Inc()
		}
	}
}

// Failures counts scenarios whose observation diverged from the paper's
// prediction (or which failed to execute).
func (c *Campaign) Failures() int {
	n := 0
	for _, r := range c.Results {
		if !r.Pass() {
			n++
		}
	}
	return n
}

// Detections counts scenarios that ended in a raised exception/violation.
func (c *Campaign) Detections() int {
	n := 0
	for _, r := range c.Results {
		if r.Observed == Detected {
			n++
		}
	}
	return n
}

// SilentMisses counts scenarios that silently lost protection.
func (c *Campaign) SilentMisses() int {
	n := 0
	for _, r := range c.Results {
		if r.Observed == SilentMiss {
			n++
		}
	}
	return n
}

// Render prints the campaign as the §V verdict table.
func (c *Campaign) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault-injection campaign (seed %d): %d scenarios, %d detected, %d silent misses, %d mismatches\n",
		c.Seed, len(c.Results), c.Detections(), c.SilentMisses(), c.Failures())
	fmt.Fprintf(&b, "%-28s %-6s %-12s %-12s %-6s %s\n",
		"scenario", "paper", "expected", "observed", "match", "detail")
	for _, r := range c.Results {
		status := "OK"
		if !r.Pass() {
			status = "FAIL"
		}
		detail := r.Detail
		if r.Err != nil {
			detail = fmt.Sprintf("error: %v", r.Err)
		}
		fmt.Fprintf(&b, "%-28s %-6s %-12s %-12s %-6s %s\n",
			r.Scenario, r.Section, r.Expected, r.Observed, status, detail)
	}
	return b.String()
}

// CSV renders the campaign as machine-readable rows.
func (c *Campaign) CSV() string {
	var b strings.Builder
	b.WriteString("scenario,section,expected,observed,match,detail\n")
	for _, r := range c.Results {
		detail := r.Detail
		if r.Err != nil {
			detail = fmt.Sprintf("error: %v", r.Err)
		}
		fmt.Fprintf(&b, "%s,%s,%s,%s,%v,%q\n",
			r.Scenario, r.Section, r.Expected, r.Observed, r.Pass(), detail)
	}
	return b.String()
}
