package fault

import (
	"strings"
	"testing"
)

// TestCampaignMatchesPaper runs the full campaign and requires every
// scenario to land on the verdict §V predicts — this is the executable form
// of the paper's false-negative analysis.
func TestCampaignMatchesPaper(t *testing.T) {
	c, err := RunCampaign(Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Results {
		if r.Err != nil {
			t.Errorf("%s: rig error: %v", r.Scenario, r.Err)
			continue
		}
		if r.Observed != r.Expected {
			t.Errorf("%s (§%s): expected %s, observed %s (%s)",
				r.Scenario, r.Section, r.Expected, r.Observed, r.Detail)
		}
	}
	if c.Failures() != 0 {
		t.Errorf("campaign reports %d failures", c.Failures())
	}
}

// TestCampaignDeterministic pins the seed contract: the same seed produces
// a byte-identical report (scenario list, verdicts, fault sites), and a
// different seed moves the random fault sites without changing verdicts.
func TestCampaignDeterministic(t *testing.T) {
	a, err := RunCampaign(Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Errorf("same seed, different reports:\n%s\nvs\n%s", a.Render(), b.Render())
	}
	if a.CSV() != b.CSV() {
		t.Errorf("same seed, different CSV")
	}

	c, err := RunCampaign(Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Results) != len(a.Results) {
		t.Fatalf("seed changed the scenario list: %d vs %d", len(c.Results), len(a.Results))
	}
	moved := false
	for i := range c.Results {
		if c.Results[i].Scenario != a.Results[i].Scenario {
			t.Errorf("scenario order changed under a different seed")
		}
		if c.Results[i].Observed != a.Results[i].Observed {
			t.Errorf("%s: verdict depends on the seed: %s vs %s",
				c.Results[i].Scenario, c.Results[i].Observed, a.Results[i].Observed)
		}
		if c.Results[i].Detail != a.Results[i].Detail {
			moved = true
		}
	}
	if !moved {
		t.Errorf("different seeds picked identical fault sites everywhere — scenarios ignore the rng")
	}
}

// TestCampaignCoverage checks the shape the ISSUE demands: at least one
// detected case per paper section exercised, and a documented silent miss
// wherever §V predicts one.
func TestCampaignCoverage(t *testing.T) {
	c, err := RunCampaign(Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	detectedBySection := map[string]int{}
	missBySection := map[string]int{}
	for _, r := range c.Results {
		if r.Observed == Detected {
			detectedBySection[r.Section]++
		}
		if r.Observed == SilentMiss {
			missBySection[r.Section]++
		}
	}
	for _, sec := range []string{"III-A", "III-B", "IV-A", "V-B"} {
		if detectedBySection[sec] == 0 {
			t.Errorf("no detected scenario for §%s", sec)
		}
	}
	// The paper's documented false-negative windows must appear as silent
	// misses: memory errors / detector placement (V-B) and the temporal
	// quarantine window (V-C).
	for _, sec := range []string{"V-B", "V-C"} {
		if missBySection[sec] == 0 {
			t.Errorf("no silent-miss scenario for §%s (the paper predicts one)", sec)
		}
	}
	if c.Detections() == 0 || c.SilentMisses() == 0 {
		t.Errorf("campaign must contain both detections (%d) and silent misses (%d)",
			c.Detections(), c.SilentMisses())
	}
}

// TestCampaignOnlyFilter exercises the substring filter the CLI exposes.
func TestCampaignOnlyFilter(t *testing.T) {
	c, err := RunCampaign(Options{Seed: 1, Only: "collision"})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Results) != 3 {
		t.Fatalf("want the 3 collision widths, got %d results", len(c.Results))
	}
	for _, r := range c.Results {
		if !strings.Contains(r.Scenario, "collision") {
			t.Errorf("filter leaked scenario %s", r.Scenario)
		}
	}
	if _, err := RunCampaign(Options{Seed: 1, Only: "no-such-scenario"}); err == nil {
		t.Errorf("want an error for a filter matching nothing")
	}
}

// TestCSVShape pins the machine-readable format: header plus one row per
// scenario, every row carrying a match column.
func TestCSVShape(t *testing.T) {
	c, err := RunCampaign(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(c.CSV()), "\n")
	if lines[0] != "scenario,section,expected,observed,match,detail" {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
	if len(lines)-1 != len(c.Results) {
		t.Errorf("CSV rows %d != results %d", len(lines)-1, len(c.Results))
	}
	for _, l := range lines[1:] {
		if !strings.Contains(l, ",true,") && !strings.Contains(l, ",false,") {
			t.Errorf("CSV row missing match column: %q", l)
		}
	}
}
