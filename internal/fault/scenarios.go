package fault

import (
	"fmt"
	"math/rand"

	"rest/internal/cache"
	"rest/internal/core"
	"rest/internal/mem"
	"rest/internal/prog"
	"rest/internal/world"
)

// Scenarios returns the campaign in its fixed order. Every §V failure-mode
// category has at least one detected case and — wherever the paper predicts
// one — a silent-miss counterpart, so the table doubles as the executable
// form of the paper's false-negative analysis.
func Scenarios() []Scenario {
	out := []Scenario{}
	for _, w := range []core.Width{core.Width16, core.Width32, core.Width64} {
		out = append(out, tokenCollision(w))
	}
	out = append(out,
		bitflipArmedRedzone(),
		bitflipCleanData(),
		partialOverwriteStore(),
		partialOverwriteDMA(),
		tokenEvictDrop(),
		tokenEvictRoundtrip(),
		uafInQuarantine(),
		quarantineExhaustion(),
		metadataCorruptionREST(),
		metadataCorruptionLibc(),
	)
	return out
}

// --- architectural rig -----------------------------------------------------
//
// archRig pairs the architectural ground truth (TokenTracker over a memory
// image) with a real REST-enabled L1-D whose token bits are filled by the
// content detector. Probing both sides after an injection shows whether the
// hardware would still flag an access — and whether the two views diverged,
// which is exactly what a silent miss is.

type flatMem struct{ lat uint64 }

func (f *flatMem) Access(now uint64, lineAddr uint64, write bool) uint64 { return now + f.lat }

type archRig struct {
	reg *core.TokenRegister
	trk *core.TokenTracker
	m   *mem.Memory
	l1d *cache.Cache
	now uint64
}

func newArchRig(w core.Width, rng *rand.Rand) (*archRig, error) {
	reg, err := core.NewTokenRegister(w, core.Secure, rng)
	if err != nil {
		return nil, err
	}
	m := mem.New()
	trk := core.NewTokenTracker(reg, m)
	l1d, err := cache.New(cache.Config{
		Name: "L1-D", SizeBytes: 4096, Ways: 2, HitCycles: 2, MSHRs: 4,
		WriteBuf: 8, RESTEnabled: true,
	}, &flatMem{lat: 50}, trk)
	if err != nil {
		return nil, err
	}
	return &archRig{reg: reg, trk: trk, m: m, l1d: l1d}, nil
}

// site picks a random token-aligned fault site in an otherwise unused
// region; randomizing it per seed keeps scenarios honest about not
// depending on magic addresses.
func (r *archRig) site(rng *rand.Rand) uint64 {
	return 0x5000_0000 + uint64(rng.Intn(1<<12))*uint64(r.reg.Width())
}

// probe observes one 8-byte load at addr through both detector views: the
// architectural contract (tracker) and the cache fill-path detector. The
// cache probe always refills the line from "memory", the way hardware would
// after the faulted line was written back.
func (r *archRig) probe(addr uint64) (arch bool, cacheHit bool) {
	exc := r.trk.CheckAccess(addr, 8, false, 0x40_0000)
	r.now += 1000
	res := r.l1d.Load(r.now, addr, 8)
	return exc != nil, res.TokenHit
}

// verdictFromProbe maps a probe of a location that held (or should hold) a
// token to a verdict: both views flagging = detected, neither = the
// protection silently vanished, divergence = rig bug.
func verdictFromProbe(arch, cacheHit bool) (Verdict, error) {
	switch {
	case arch && cacheHit:
		return Detected, nil
	case !arch && !cacheHit:
		return SilentMiss, nil
	default:
		return Benign, fmt.Errorf("fault: detector views diverged (arch=%v cache=%v)", arch, cacheHit)
	}
}

// --- §V-B: collisions, bit flips, detector placement -----------------------

// tokenCollision forces the 2^-(8W) coincidence the paper bounds in §V-B
// ("Aliasing"): program data that happens to equal the token. The detector
// is purely content-based, so it must flag the chunk — a spurious but
// fail-safe detection.
func tokenCollision(w core.Width) Scenario {
	return Scenario{
		Name:    fmt.Sprintf("token-collision-%d", int(w)),
		Section: "V-B",
		Description: fmt.Sprintf("program data exactly equals the %d-byte token; "+
			"content-based detection must flag it (spurious, fail-safe)", int(w)),
		Expected: Detected,
		run: func(rng *rand.Rand) (Verdict, string, error) {
			r, err := newArchRig(w, rng)
			if err != nil {
				return Benign, "", err
			}
			addr := r.site(rng)
			// Ordinary data first, then the forced coincidence.
			r.m.WriteUint(addr, 8, rng.Uint64())
			r.trk.InjectTokenWrite(addr)
			arch, ch := r.probe(addr)
			v, err := verdictFromProbe(arch, ch)
			return v, fmt.Sprintf("data at %#x equals token", addr), err
		},
	}
}

// bitflipArmedRedzone models a DRAM bit flip inside a planted token (§V-B
// "Tolerance to Memory Errors"): the corrupted chunk no longer matches the
// token register, so the detector silently stops flagging it. Protection is
// lost with no report — the paper accepts this as a vanishingly rare event.
func bitflipArmedRedzone() Scenario {
	return Scenario{
		Name:    "bitflip-armed-redzone",
		Section: "V-B",
		Description: "single DRAM bit flip inside an armed token chunk; the " +
			"chunk stops matching the register and drops out of detection",
		Expected: SilentMiss,
		run: func(rng *rand.Rand) (Verdict, string, error) {
			r, err := newArchRig(core.Width64, rng)
			if err != nil {
				return Benign, "", err
			}
			addr := r.site(rng)
			if exc := r.trk.Arm(addr, 0); exc != nil {
				return Benign, "", exc
			}
			off := uint64(rng.Intn(int(r.reg.Width())))
			bit := uint(rng.Intn(8))
			changed := r.trk.InjectBitFlip(addr+off, bit)
			arch, ch := r.probe(addr)
			v, err := verdictFromProbe(arch, ch)
			return v, fmt.Sprintf("flipped bit %d of byte %#x (disarmed=%v)", bit, addr+off, changed), err
		},
	}
}

// bitflipCleanData flips a bit in ordinary data: with a random ≥128-bit
// token, one flip cannot manufacture a collision, so nothing changes.
func bitflipCleanData() Scenario {
	return Scenario{
		Name:    "bitflip-clean-data",
		Section: "V-B",
		Description: "single bit flip in unprotected data; cannot create a " +
			"token coincidence, detector unaffected",
		Expected: Benign,
		run: func(rng *rand.Rand) (Verdict, string, error) {
			r, err := newArchRig(core.Width64, rng)
			if err != nil {
				return Benign, "", err
			}
			addr := r.site(rng)
			r.m.WriteUint(addr, 8, rng.Uint64())
			off := uint64(rng.Intn(int(r.reg.Width())))
			bit := uint(rng.Intn(8))
			changed := r.trk.InjectBitFlip(addr+off, bit)
			arch, ch := r.probe(addr)
			if arch || ch || changed {
				return Detected, fmt.Sprintf("flip at %#x unexpectedly flagged", addr+off), nil
			}
			return Benign, fmt.Sprintf("flipped bit %d of byte %#x, no effect", bit, addr+off), nil
		},
	}
}

// partialOverwriteStore is the in-band overwrite: a regular store trying to
// clobber part of a planted token. The store itself touches the token, so
// the detector fires before the redzone is breached — the tripwire working
// as designed (§III-A).
func partialOverwriteStore() Scenario {
	return Scenario{
		Name:    "partial-overwrite-store",
		Section: "III-A",
		Description: "regular 8-byte store aimed into an armed redzone; the " +
			"access itself trips the detector before the token is damaged",
		Expected: Detected,
		run: func(rng *rand.Rand) (Verdict, string, error) {
			r, err := newArchRig(core.Width64, rng)
			if err != nil {
				return Benign, "", err
			}
			addr := r.site(rng)
			if exc := r.trk.Arm(addr, 0); exc != nil {
				return Benign, "", exc
			}
			off := uint64(rng.Intn(int(r.reg.Width())-7)) &^ 7
			exc := r.trk.CheckAccess(addr+off, 8, true, 0x40_0000)
			r.now += 1000
			res := r.l1d.Store(r.now, addr+off, 8)
			v, err := verdictFromProbe(exc != nil, res.TokenHit)
			return v, fmt.Sprintf("store to %#x inside armed chunk", addr+off), err
		},
	}
}

// partialOverwriteDMA is the out-of-band overwrite through the documented
// detector blind spot (§V-B "Detector Placement"): a DMA-style write that
// never passes the L1-D partially overwrites the token. No detector sees
// the write, the chunk stops matching, and protection silently ends.
func partialOverwriteDMA() Scenario {
	return Scenario{
		Name:    "partial-overwrite-dma",
		Section: "V-B",
		Description: "cache-bypassing (DMA) write clobbers half a planted " +
			"token; no detector on that path, protection silently lost",
		Expected: SilentMiss,
		run: func(rng *rand.Rand) (Verdict, string, error) {
			r, err := newArchRig(core.Width64, rng)
			if err != nil {
				return Benign, "", err
			}
			addr := r.site(rng)
			if exc := r.trk.Arm(addr, 0); exc != nil {
				return Benign, "", exc
			}
			// The DMA engine moves the line with no token checking; model its
			// payload mutation directly in memory, then resync content-derived
			// state the way the next fill would.
			dma := cache.NewDMAEngine(&flatMem{lat: 50})
			dma.Transfer(0, addr, 8, r.trk)
			r.m.WriteUint(addr, 8, rng.Uint64()|1)
			r.trk.ResyncChunk(addr)
			arch, ch := r.probe(addr)
			v, err := verdictFromProbe(arch, ch)
			return v, fmt.Sprintf("DMA overwrote 8 bytes at %#x (token lines moved: %d)", addr, dma.TokenLineHits), err
		},
	}
}

// --- token bits across the hierarchy ----------------------------------------

// evictTokenLine arms a line, fills it into the L1-D, then forces its
// eviction with two conflicting fills in the same set (4KB/2-way geometry:
// 2KB stride aliases).
func evictTokenLine(r *archRig, addr uint64) error {
	if exc := r.trk.Arm(addr, 0); exc != nil {
		return exc
	}
	r.now += 1000
	if res := r.l1d.Load(r.now, addr, 8); !res.TokenHit {
		return fmt.Errorf("fault: armed line not flagged at fill")
	}
	r.now += 1000
	r.l1d.Load(r.now, addr+2048, 8)
	r.now += 1000
	r.l1d.Load(r.now, addr+4096, 8)
	if r.l1d.Contains(addr) {
		return fmt.Errorf("fault: token line still resident after conflict fills")
	}
	return nil
}

// tokenEvictDrop models token-bit loss on L1-D eviction (§III-B: the token
// bit exists only at the L1-D; the writeback packet re-materializes the
// token value). The fault drops the token from the outgoing packet, so the
// refilled line holds garbage: the chunk silently leaves detection.
func tokenEvictDrop() Scenario {
	return Scenario{
		Name:    "token-evict-drop",
		Section: "V-B",
		Description: "writeback packet loses the token value when the armed " +
			"line is evicted; the refill sees no token and protection is gone",
		Expected: SilentMiss,
		run: func(rng *rand.Rand) (Verdict, string, error) {
			r, err := newArchRig(core.Width64, rng)
			if err != nil {
				return Benign, "", err
			}
			addr := r.site(rng) &^ (core.LineBytes - 1)
			var dropped []uint64
			r.l1d.OnTokenEvict = func(lineAddr uint64, mask uint8) {
				// The fault: the materialized token never reaches memory.
				r.trk.InjectTokenDrop(lineAddr)
				dropped = append(dropped, lineAddr)
			}
			if err := evictTokenLine(r, addr); err != nil {
				return Benign, "", err
			}
			arch, ch := r.probe(addr)
			v, err := verdictFromProbe(arch, ch)
			return v, fmt.Sprintf("token dropped from writeback of line %#x (%d drops)", addr, len(dropped)), err
		},
	}
}

// tokenEvictRoundtrip is the paired no-fault control: the writeback carries
// the token, the refill's content detector re-derives the token bit, and
// the access is still caught. This is Table I's eviction row end to end.
func tokenEvictRoundtrip() Scenario {
	return Scenario{
		Name:    "token-evict-roundtrip",
		Section: "III-B",
		Description: "armed line evicted and refilled with an intact " +
			"writeback; the fill-path detector reconstructs the token bit",
		Expected: Detected,
		run: func(rng *rand.Rand) (Verdict, string, error) {
			r, err := newArchRig(core.Width64, rng)
			if err != nil {
				return Benign, "", err
			}
			addr := r.site(rng) &^ (core.LineBytes - 1)
			if err := evictTokenLine(r, addr); err != nil {
				return Benign, "", err
			}
			arch, ch := r.probe(addr)
			v, err := verdictFromProbe(arch, ch)
			return v, fmt.Sprintf("line %#x evicted and refilled intact", addr), err
		},
	}
}

// --- §V-C: allocator and temporal windows -----------------------------------

// runProgram builds a full world (allocator, runtime, REST hardware) for
// one pass and runs the program functionally.
func runProgram(pass prog.PassConfig, seed int64, build func(b *prog.Builder)) (world.Outcome, error) {
	w, err := world.Build(world.Spec{Pass: pass, Mode: core.Secure, Seed: seed, Engine: campaignEngine}, build)
	if err != nil {
		return world.Outcome{}, err
	}
	out := w.RunFunctional()
	if out.Err != nil {
		return out, out.Err
	}
	return out, nil
}

// uafInQuarantine is the temporal tripwire working: a dangling access while
// the freed chunk still sits token-filled in quarantine must raise.
func uafInQuarantine() Scenario {
	return Scenario{
		Name:    "uaf-in-quarantine",
		Section: "IV-A",
		Description: "dangling load while the freed chunk is still " +
			"token-filled in quarantine; the tripwire must fire",
		Expected: Detected,
		run: func(rng *rand.Rand) (Verdict, string, error) {
			out, err := runProgram(prog.RESTHeap(64), rng.Int63(), func(b *prog.Builder) {
				f := b.Func("main")
				p := f.Reg()
				v := f.Reg()
				f.CallMallocI(p, 256)
				f.CallFree(p)
				f.Load(v, p, 0, 8)
				f.Checksum(v)
			})
			if err != nil {
				return Benign, "", err
			}
			if out.Detected() {
				return Detected, out.String(), nil
			}
			return SilentMiss, "dangling load completed", nil
		},
	}
}

// quarantineExhaustion reproduces §V-C "Temporal Protection": churn pushes
// the freed chunk out of the (exhausted) quarantine, the allocator recycles
// it, and the dangling access lands in the new allocation — legal as far as
// any tripwire can tell. The documented temporal false-negative window.
func quarantineExhaustion() Scenario {
	return Scenario{
		Name:    "quarantine-exhaustion",
		Section: "V-C",
		Description: "churn exhausts the quarantine, chunk is recycled, " +
			"dangling access hits the new allocation: documented silent window",
		Expected: SilentMiss,
		run: func(rng *rand.Rand) (Verdict, string, error) {
			out, err := runProgram(prog.RESTHeap(64), rng.Int63(), func(b *prog.Builder) {
				f := b.Func("main")
				p := f.Reg()
				v := f.Reg()
				f.CallMallocI(p, 4096)
				f.CallFree(p)
				// Push far past the 256KB quarantine cap in a different size
				// class so p reaches the free pool without being consumed.
				f.ForRangeI(100, func(prog.Reg) {
					q := f.Reg()
					f.CallMallocI(q, 8192)
					f.CallFree(q)
				})
				q := f.Reg()
				f.CallMallocI(q, 4096) // the allocator hands p back
				f.Load(v, p, 0, 8)     // dangling access through the old pointer
				f.Checksum(v)
			})
			if err != nil {
				return Benign, "", err
			}
			if out.Detected() {
				return Detected, out.String(), nil
			}
			return SilentMiss, "recycled chunk reached undetected", nil
		},
	}
}

// metadataCorruptionREST aims a store at the chunk header/left-redzone
// region. Under the REST allocator that region is armed, so the corruption
// attempt itself trips the detector.
func metadataCorruptionREST() Scenario {
	return Scenario{
		Name:    "metadata-corruption-rest",
		Section: "IV-A",
		Description: "store into the allocator header/left redzone under the " +
			"REST allocator; the armed region catches the corruption",
		Expected: Detected,
		run: func(rng *rand.Rand) (Verdict, string, error) {
			out, err := runProgram(prog.RESTHeap(64), rng.Int63(), metadataCorruptionProgram)
			if err != nil {
				return Benign, "", err
			}
			if out.Detected() {
				return Detected, out.String(), nil
			}
			return SilentMiss, "metadata store completed", nil
		},
	}
}

// metadataCorruptionLibc is the same program on the baseline allocator: no
// redzones, nothing armed, the corruption lands silently. The contrast row
// makes the REST detection meaningful.
func metadataCorruptionLibc() Scenario {
	return Scenario{
		Name:    "metadata-corruption-libc",
		Section: "II",
		Description: "the same header corruption under the libc baseline " +
			"allocator: no redzones, silently corrupts",
		Expected: SilentMiss,
		run: func(rng *rand.Rand) (Verdict, string, error) {
			out, err := runProgram(prog.Plain(), rng.Int63(), metadataCorruptionProgram)
			if err != nil {
				return Benign, "", err
			}
			if out.Detected() {
				return Detected, out.String(), nil
			}
			return SilentMiss, "metadata store completed", nil
		},
	}
}

// metadataCorruptionProgram writes just below a heap payload — into the
// header/left-redzone band every allocator keeps there.
func metadataCorruptionProgram(b *prog.Builder) {
	f := b.Func("main")
	p := f.Reg()
	v := f.Reg()
	f.CallMallocI(p, 64)
	f.MovI(v, 0xBAD)
	f.Store(p, -8, v, 8)
	f.Load(v, p, 0, 8)
	f.Checksum(v)
}
