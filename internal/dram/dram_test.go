package dram

import "testing"

func TestColdAccessLatency(t *testing.T) {
	d := New(Config{})
	done := d.Access(0, 0x1000)
	// front(10) + RAS(70) + CAS(28) + burst(20) = 128
	if done != 128 {
		t.Errorf("cold access done = %d, want 128", done)
	}
	if d.RowMisses != 1 || d.RowHits != 0 {
		t.Errorf("hits/misses = %d/%d, want 0/1", d.RowHits, d.RowMisses)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	d := New(Config{})
	first := d.Access(0, 0x1000)
	hit := d.Access(first, 0x1040) - first // same 8KiB row
	d2 := New(Config{})
	d2.Access(0, 0x1000)
	miss := d2.Access(first, 0x1000+1<<13) - first // same bank, new row
	if hit >= miss {
		t.Errorf("row hit latency %d not faster than row miss %d", hit, miss)
	}
	if d.RowHits != 1 {
		t.Errorf("RowHits = %d, want 1", d.RowHits)
	}
}

func TestOpenRowMissPaysPrecharge(t *testing.T) {
	cfg := Config{}
	d := New(cfg)
	d.Access(0, 0x0)                         // opens row 0 of bank 0
	start := uint64(10_000)                  // after bank is idle
	done := d.Access(start, uint64(8)<<13*8) // bank 0 (row 64), different row
	lat := done - start
	// front(10) + RP(28) + RAS(70) + CAS(28) + burst(20) = 156
	if lat != 156 {
		t.Errorf("open-row conflict latency = %d, want 156", lat)
	}
}

func TestBusSerializesTransfers(t *testing.T) {
	d := New(Config{})
	// Two accesses to different banks at the same time: data transfers must
	// not overlap on the shared bus.
	aDone := d.Access(0, 0x0000) // bank 0
	bDone := d.Access(0, 0x2000) // bank 1 (row 1)
	if bDone < aDone+20 {
		t.Errorf("second transfer done=%d overlaps first (done=%d)", bDone, aDone)
	}
}

func TestBankConflictQueues(t *testing.T) {
	d := New(Config{})
	a := d.Access(0, 0x0)
	b := d.Access(1, 0x0) // same bank, same row: row hit but bank busy
	if b <= a {
		t.Errorf("bank-conflicting access done=%d not after first=%d", b, a)
	}
	if d.RowHits != 1 {
		t.Errorf("RowHits = %d, want 1 (second access hits open row)", d.RowHits)
	}
}

func TestRowHitRate(t *testing.T) {
	d := New(Config{})
	if d.RowHitRate() != 0 {
		t.Error("empty hit rate != 0")
	}
	now := uint64(0)
	for i := 0; i < 10; i++ {
		now = d.Access(now, 0x1000+uint64(i)*64) // streaming within one row
	}
	if r := d.RowHitRate(); r < 0.89 {
		t.Errorf("streaming row hit rate = %f, want >= 0.9", r)
	}
}
