// Package dram models main-memory timing: a DDR3-style device with banks,
// row buffers, and a shared data bus, configured per Table II of the paper
// (DDR3, 800 MHz, 13.75ns CAS latency and row precharge, 35ns RAS latency).
// Latencies are expressed in CPU cycles at the core clock (2 GHz).
package dram

// Config sizes the DRAM model. Zero values take Table II defaults at a
// 2 GHz core clock.
type Config struct {
	Banks       int    // number of banks (default 8)
	RowBits     int    // log2 bytes per row (default 13 -> 8KiB rows)
	CASCycles   uint64 // column access latency (13.75ns -> 28 cycles)
	RPCycles    uint64 // row precharge (13.75ns -> 28 cycles)
	RASCycles   uint64 // row activate (35ns -> 70 cycles)
	BurstCycles uint64 // data-bus occupancy per 64B line (DDR3-800 x64: 10ns -> 20 cycles)
	FrontCycles uint64 // controller/queueing fixed overhead (default 10)
}

func (c *Config) applyDefaults() {
	if c.Banks == 0 {
		c.Banks = 8
	}
	if c.RowBits == 0 {
		c.RowBits = 13
	}
	if c.CASCycles == 0 {
		c.CASCycles = 28
	}
	if c.RPCycles == 0 {
		c.RPCycles = 28
	}
	if c.RASCycles == 0 {
		c.RASCycles = 70
	}
	if c.BurstCycles == 0 {
		c.BurstCycles = 20
	}
	if c.FrontCycles == 0 {
		c.FrontCycles = 10
	}
}

type bank struct {
	openRow int64 // -1 = closed
	readyAt uint64
}

// DRAM is the main-memory timing model. Access returns the completion cycle
// of a 64-byte line transfer that begins no earlier than `now`.
type DRAM struct {
	cfg   Config
	banks []bank
	busAt uint64 // cycle at which the data bus is next free

	// Stats.
	Accesses  uint64
	RowHits   uint64
	RowMisses uint64
}

// New builds a DRAM model.
func New(cfg Config) *DRAM {
	cfg.applyDefaults()
	d := &DRAM{cfg: cfg, banks: make([]bank, cfg.Banks)}
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	return d
}

// Access schedules a 64-byte line read or write beginning at cycle `now` and
// returns the cycle at which the data transfer completes.
func (d *DRAM) Access(now uint64, addr uint64) uint64 {
	d.Accesses++
	row := int64(addr >> uint(d.cfg.RowBits))
	b := &d.banks[int(row)%len(d.banks)]

	start := now + d.cfg.FrontCycles
	if b.readyAt > start {
		start = b.readyAt
	}

	var lat uint64
	if b.openRow == row {
		d.RowHits++
		lat = d.cfg.CASCycles
	} else {
		d.RowMisses++
		if b.openRow >= 0 {
			lat = d.cfg.RPCycles + d.cfg.RASCycles + d.cfg.CASCycles
		} else {
			lat = d.cfg.RASCycles + d.cfg.CASCycles
		}
		b.openRow = row
	}

	dataStart := start + lat
	if d.busAt > dataStart {
		dataStart = d.busAt
	}
	done := dataStart + d.cfg.BurstCycles
	d.busAt = done
	b.readyAt = done
	return done
}

// RowHitRate reports the fraction of accesses that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	if d.Accesses == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(d.Accesses)
}
