package shadow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rest/internal/layout"
	"rest/internal/mem"
)

func TestAddrMapping(t *testing.T) {
	if Addr(0) != layout.ShadowBase {
		t.Errorf("Addr(0) = %#x, want ShadowBase", Addr(0))
	}
	if Addr(8) != layout.ShadowBase+1 {
		t.Errorf("Addr(8) = %#x, want ShadowBase+1", Addr(8))
	}
	// Heap and stack shadows land inside the shadow region.
	if !layout.InShadow(Addr(layout.HeapBase)) {
		t.Error("heap shadow outside shadow region")
	}
	if !layout.InShadow(Addr(layout.StackTop - 8)) {
		t.Error("stack shadow outside shadow region")
	}
}

func TestPoisonCheck(t *testing.T) {
	s := New(mem.New())
	base := uint64(layout.HeapBase)
	s.Poison(base, 64, HeapLeftRZ)
	s.Unpoison(base+64, 128)
	s.Poison(base+192, 64, HeapRightRZ)

	if ok, _ := s.Check(base+64, 8); !ok {
		t.Error("access to unpoisoned payload rejected")
	}
	if ok, p := s.Check(base+32, 8); ok || p != HeapLeftRZ {
		t.Errorf("access to left redzone allowed (ok=%v p=%#x)", ok, p)
	}
	if ok, p := s.Check(base+192, 1); ok || p != HeapRightRZ {
		t.Errorf("access to right redzone allowed (ok=%v p=%#x)", ok, p)
	}
	// Straddling payload into redzone.
	if ok, _ := s.Check(base+188, 8); ok {
		t.Error("straddling access allowed")
	}
}

func TestPartialGranule(t *testing.T) {
	s := New(mem.New())
	base := uint64(layout.HeapBase)
	s.Unpoison(base, 13) // 1 full granule + 5 bytes
	if ok, _ := s.Check(base+8, 5); !ok {
		t.Error("in-bounds partial access rejected")
	}
	if ok, _ := s.Check(base+8, 6); ok {
		t.Error("partial-granule overflow allowed")
	}
	if ok, _ := s.Check(base+12, 1); !ok {
		t.Error("last valid byte rejected")
	}
	if ok, _ := s.Check(base+13, 1); ok {
		t.Error("first invalid byte allowed")
	}
}

func TestFastCheckValue(t *testing.T) {
	s := New(mem.New())
	base := uint64(layout.HeapBase)
	if s.FastCheckValue(base) != 0 {
		t.Error("clean shadow fast value != 0")
	}
	s.Poison(base, 8, FreedHeap)
	if s.FastCheckValue(base) != FreedHeap {
		t.Error("poisoned shadow fast value wrong")
	}
}

// Property: Unpoison(addr, n) then Check of any in-bounds access passes and
// any access crossing the end fails.
func TestUnpoisonCheckProperty(t *testing.T) {
	s := New(mem.New())
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		base := uint64(layout.HeapBase) + uint64(r.Intn(1000))*256
		n := uint64(1 + r.Intn(120))
		s.Poison(base, 256, HeapRightRZ)
		s.Unpoison(base, n)
		// In-bounds byte access.
		off := uint64(r.Intn(int(n)))
		if ok, _ := s.Check(base+off, 1); !ok {
			return false
		}
		// Access beginning at the end must fail.
		if ok, _ := s.Check(base+n, 1); ok {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
