// Package shadow implements AddressSanitizer's shadow memory encoding
// (Serebryany et al., USENIX ATC 2012), which the paper's Figure 2
// summarizes: every 8 bytes of application memory map to one shadow byte at
// f(addr) = (addr >> 3) + ShadowBase.
//
// Shadow byte values:
//
//	0         all 8 bytes addressable
//	1..7      only the first k bytes addressable (partial right redzone)
//	>= 0x80   poisoned (redzone or freed), value identifies the kind
package shadow

import (
	"rest/internal/layout"
	"rest/internal/mem"
)

// Poison values, matching ASan's conventions.
const (
	HeapLeftRZ   = 0xfa
	HeapRightRZ  = 0xfb
	FreedHeap    = 0xfd
	StackLeftRZ  = 0xf1
	StackMidRZ   = 0xf2
	StackRightRZ = 0xf3
	Addressable  = 0x00
)

// Granularity is the bytes-per-shadow-byte ratio.
const Granularity = 8

// Addr maps an application address to its shadow byte address.
func Addr(appAddr uint64) uint64 {
	return (appAddr >> 3) + layout.ShadowBase
}

// Map provides shadow bookkeeping over a memory image. The zero value is not
// usable; call New.
type Map struct {
	m *mem.Memory
}

// New builds a shadow map over the memory image.
func New(m *mem.Memory) *Map { return &Map{m: m} }

// Poison marks [addr, addr+n) with the given poison value. addr and n must
// be Granularity-aligned (ASan's own alignment requirement, footnote 3 of
// the paper).
func (s *Map) Poison(addr, n uint64, value byte) {
	for a := addr; a < addr+n; a += Granularity {
		s.m.SetByte(Addr(a), value)
	}
}

// Unpoison marks [addr, addr+n) addressable. A trailing partial granule is
// encoded with its addressable prefix length, as ASan does.
func (s *Map) Unpoison(addr, n uint64) {
	full := n / Granularity * Granularity
	for a := addr; a < addr+full; a += Granularity {
		s.m.SetByte(Addr(a), Addressable)
	}
	if rem := n - full; rem != 0 {
		s.m.SetByte(Addr(addr+full), byte(rem))
	}
}

// Check reports whether an access of size bytes at addr is allowed, and the
// shadow value that forbade it. This is ASan's slow-path check.
func (s *Map) Check(addr uint64, size uint8) (ok bool, poison byte) {
	end := addr + uint64(size) - 1
	for gran := addr / Granularity; gran <= end/Granularity; gran++ {
		sv := s.m.Byte(Addr(gran * Granularity))
		if sv == Addressable {
			continue
		}
		if sv >= 0x80 {
			return false, sv
		}
		// Partial granule: bytes [0, sv) addressable.
		granBase := gran * Granularity
		lo := addr
		if granBase > lo {
			lo = granBase
		}
		hi := end
		if granBase+Granularity-1 < hi {
			hi = granBase + Granularity - 1
		}
		if hi-granBase >= uint64(sv) {
			return false, sv
		}
		_ = lo
	}
	return true, 0
}

// FastCheckValue returns the shadow byte the inline fast path would load for
// addr; non-zero sends the access to the slow path.
func (s *Map) FastCheckValue(addr uint64) byte {
	return s.m.Byte(Addr(addr))
}
