// Package rest is a full-system reproduction of "Practical Memory Safety
// with REST" (Sinha & Sethumadhavan, ISCA 2018) in pure Go.
//
// REST (Random Embedded Secret Tokens) is a hardware primitive for
// content-based memory checks: a very large random value — the token — is
// planted into memory locations that must never be touched (redzones around
// buffers, freed heap chunks). The L1 data cache detects token-valued lines
// with one metadata bit per line and a comparator on the fill path; any
// regular access to a token raises a privileged REST exception. Two
// instructions, ARM and DISARM, plant and remove tokens.
//
// This package is the public facade over the full stack built for the
// reproduction:
//
//   - a RISC-style ISA with ARM/DISARM, a functional simulator, and runtime
//     services (allocators, libc interceptors) whose memory traffic is part
//     of the simulated instruction stream;
//   - the REST hardware: token register, per-chunk L1-D token bits,
//     fill-time detector, LSQ forwarding checks, secure/debug exception
//     modes (internal/core, internal/cache, internal/cpu);
//   - the software framework: ASan-equivalent shadow memory, compiler
//     passes (plain / ASan / REST / PerfectHW), and the three allocators;
//   - an out-of-order timing model configured per the paper's Table II;
//   - 12 SPEC-named synthetic workloads, an attack suite, and the harness
//     that regenerates every table and figure of the evaluation.
//
// # Quick start
//
//	out, err := rest.RunProgram(rest.RESTFull(64), rest.Secure,
//	    func(b *rest.ProgramBuilder) {
//	        f := b.Func("main")
//	        buf := f.Buffer(64, true) // protected: bookended with tokens
//	        p := f.Reg()
//	        f.BufAddr(p, buf, 0)
//	        f.Store(p, 64, p, 8) // one byte past the end
//	    })
//	// out.Exception reports the REST violation.
//
// See examples/ for runnable programs and cmd/restbench for the experiment
// harness.
package rest

import (
	"context"

	"rest/internal/asm"
	"rest/internal/attack"
	"rest/internal/core"
	"rest/internal/cpu"
	"rest/internal/fault"
	"rest/internal/harness"
	"rest/internal/isa"
	"rest/internal/prog"
	"rest/internal/workload"
	"rest/internal/world"
)

// Re-exported core types. TokenWidth selects the token size in bytes
// (§III-B "Modifying Token Width"); Mode selects exception precision.
type (
	// TokenWidth is the token size in bytes (16, 32 or 64).
	TokenWidth = core.Width
	// Mode is the exception reporting mode.
	Mode = core.Mode
	// Exception is the privileged REST memory-safety exception.
	Exception = core.Exception
	// ViolationKind classifies REST exceptions.
	ViolationKind = core.ViolationKind
	// Pass selects the instrumentation inserted at compile time.
	Pass = prog.PassConfig
	// ProgramBuilder is the DSL used to write simulated programs.
	ProgramBuilder = prog.Builder
	// Reg is a symbolic register handle in the program DSL.
	Reg = prog.Reg
	// Buffer is a stack array declared in the program DSL.
	Buffer = prog.Buffer
	// Outcome is the architectural result of a run.
	Outcome = world.Outcome
	// TimingStats is the cycle-level result of a timed run.
	TimingStats = cpu.Stats
	// Workload is one synthetic benchmark.
	Workload = workload.Workload
	// Attack is one adversarial program from the §V suite.
	Attack = attack.Attack
	// System is a fully assembled simulation world.
	System = world.World
	// Instr is one decoded machine instruction (returned by Assemble).
	Instr = isa.Instr
)

// Token widths.
const (
	Width16 = core.Width16
	Width32 = core.Width32
	Width64 = core.Width64
)

// Exception modes: Secure is the low-overhead deployment mode (imprecise
// exceptions); Debug guarantees precise exceptions at higher cost.
const (
	Secure = core.Secure
	Debug  = core.Debug
)

// Pass constructors.
var (
	// Plain builds without any protection (the baseline).
	Plain = prog.Plain
	// ASanFull builds with AddressSanitizer-equivalent instrumentation.
	ASanFull = prog.ASanFull
	// RESTFull builds with stack + heap REST protection at the given token
	// width (requires "recompilation", i.e. this pass).
	RESTFull = prog.RESTFull
	// RESTHeap builds with heap-only REST protection: no instrumentation at
	// all — the paper's legacy-binary deployment.
	RESTHeap = prog.RESTHeap
	// PerfectHWFull and PerfectHWHeap cost the REST software on hypothetical
	// zero-cost hardware (the paper's limit study).
	PerfectHWFull = prog.PerfectHWFull
	// PerfectHWHeap is the heap-only perfect-hardware build.
	PerfectHWHeap = prog.PerfectHWHeap
)

// NewSystem assembles a complete simulation world (program, runtime, REST
// hardware, caches, core) for the given pass, mode and width.
func NewSystem(pass Pass, mode Mode, build func(b *ProgramBuilder)) (*System, error) {
	return world.Build(world.Spec{
		Pass:  pass,
		Mode:  mode,
		Width: core.Width(pass.TokenWidth),
	}, build)
}

// RunProgram builds and functionally executes a program, returning the
// architectural outcome (checksum, REST exception or software violation).
func RunProgram(pass Pass, mode Mode, build func(b *ProgramBuilder)) (Outcome, error) {
	w, err := NewSystem(pass, mode, build)
	if err != nil {
		return Outcome{}, err
	}
	return w.RunFunctional(), nil
}

// RunTimed builds and executes a program through the out-of-order timing
// model (Table II configuration), returning cycle-level statistics and the
// architectural outcome.
func RunTimed(pass Pass, mode Mode, build func(b *ProgramBuilder)) (*TimingStats, Outcome, error) {
	w, err := NewSystem(pass, mode, build)
	if err != nil {
		return nil, Outcome{}, err
	}
	st, out := w.RunTimed()
	return st, out, nil
}

// Workloads returns the 12 SPEC-named synthetic benchmarks of the
// evaluation.
func Workloads() []Workload { return workload.All() }

// WorkloadByName looks up one benchmark.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// Attacks returns the §V attack/violation suite.
func Attacks() []Attack { return attack.All() }

// Experiment entry points (see cmd/restbench for the CLI). Each takes a
// context so callers can bound whole figures with a deadline; a sweep cut
// short degrades into a partial matrix with annotated holes plus a
// *harness.MatrixError describing the missing cells.

// RunFigure7 sweeps all workloads over the eight Figure 7 configurations at
// the given scale and returns the overhead matrix.
func RunFigure7(ctx context.Context, scale int64) (*harness.Matrix, error) {
	return harness.RunMatrixParallel(ctx, workload.All(), harness.Fig7Configs(), scale, harness.ParallelOptions{})
}

// RunFigure8 sweeps the token-width configurations of Figure 8.
func RunFigure8(ctx context.Context, scale int64) (*harness.Matrix, error) {
	cfgs := append(harness.Fig8Configs(), harness.BinaryConfig{Name: "plain", Pass: prog.Plain()})
	return harness.RunMatrixParallel(ctx, workload.All(), cfgs, scale, harness.ParallelOptions{})
}

// RunFigure3 regenerates the ASan overhead component breakdown.
func RunFigure3(ctx context.Context, scale int64) (*harness.Fig3Result, error) {
	return harness.RunFig3(ctx, workload.All(), scale)
}

// RunFaultCampaign executes the deterministic fault-injection campaign
// (§V robustness analysis): every scenario perturbs a running world —
// bit flips, token loss on eviction, partial token overwrites, forced
// collisions, quarantine exhaustion — and is checked against its expected
// verdict (detected / silent miss / benign).
func RunFaultCampaign(seed int64) (*fault.Campaign, error) {
	return fault.RunCampaign(fault.Options{Seed: seed})
}

// TableI runs the REST semantics conformance matrix and reports whether
// every observed behaviour matches the paper's Table I.
func TableI() (string, bool) { return harness.RunTableI() }

// TableII renders the simulated hardware configuration.
func TableII() string { return harness.RenderTableII() }

// TableIII renders the qualitative comparison of hardware schemes.
func TableIII() string { return harness.RenderTableIII() }

// Assemble parses textual REST assembly (see internal/asm for the syntax)
// into an instruction sequence and its entry index.
func Assemble(src string) ([]isa.Instr, int, error) { return asm.Parse(src) }

// Disassemble renders an instruction sequence back to text.
func Disassemble(prog []isa.Instr) string { return asm.Format(prog) }
