# Developer / CI entry points. The repo is stdlib-only; everything below is
# plain `go` tool invocations.
#
#   make test        tier-1 gate: build everything, run the full test suite
#   make race        the parallel sweep engine under the race detector
#   make fuzz-short  brief run of every native fuzz target (seed corpus +
#                    FUZZTIME of new inputs each)
#   make faults      the §V fault-injection campaign (deterministic in SEED)
#   make bench       regenerate every figure/table as benchmarks
#   make bench-smoke every benchmark in every package, one iteration each —
#                    proves the bench suite still compiles and runs
#   make bench-json  measure the sweep-cache A/Bs (in-memory capture/replay,
#                    persistent cold vs warm) and record them as
#                    $(BENCH_JSON) (the perf trajectory artifact; one file
#                    per PR, never clobbered: override BENCH_JSON to regen
#                    an older point)
#   make chaos-short the storage-chaos differential wall: the sensitivity
#                    sweep under seeded fault injection at 0/10/50/100%
#                    per-op rates, cold -j1 and warm -j4, byte-identical to
#                    cache-off (plus the torn-write and vanished-dir
#                    recovery checks)
#   make watch-demo  live-telemetry demo: a background sweep with -serve
#                    plus `restbench -watch` attached to it
#   make clean-cache remove the default local persistent cache directory
#   make verify      what CI runs: vet + test + race

GO         ?= go
FUZZTIME   ?= 10s
SEED       ?= 42
BENCH_JSON ?= BENCH_10.json
CACHE_DIR  ?= .restcache

.PHONY: build vet test race fuzz-short faults bench bench-smoke bench-json chaos-short watch-demo clean-cache verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# The harness package's differential suites run close to go test's default
# 10-minute per-package deadline under the race detector (they already
# subset their workload grids when built with -race); give them headroom.
race:
	$(GO) test -race -timeout 25m ./...

# `go test -fuzz` accepts a single package per invocation.
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzEncodeDecode  -fuzztime=$(FUZZTIME) ./internal/isa
	$(GO) test -run='^$$' -fuzz=FuzzDecodeProgram -fuzztime=$(FUZZTIME) ./internal/isa
	$(GO) test -run='^$$' -fuzz=FuzzEncodeDecode  -fuzztime=$(FUZZTIME) ./internal/asm
	$(GO) test -run='^$$' -fuzz=FuzzTokenDetector -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzTraceDecode   -fuzztime=$(FUZZTIME) ./internal/persist
	$(GO) test -run='^$$' -fuzz=FuzzBlockDecode     -fuzztime=$(FUZZTIME) ./internal/sim
	$(GO) test -run='^$$' -fuzz=FuzzBlockInvalidate -fuzztime=$(FUZZTIME) ./internal/sim

faults:
	$(GO) run ./cmd/restbench -faults -seed $(SEED) -csv

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# One iteration of every benchmark in every package: a cheap CI gate that
# keeps the bench suite from bit-rotting between real benchmarking sessions.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# The Figure 8 sensitivity sweep A/Bs — in-memory cache on vs off (best of
# two rounds each) and persistent cache cold vs warm — plus the interpreter
# A/B (decoded-block engine vs reference, with its >= 3x floor), recorded as
# a machine-readable point of the perf trajectory. Writes $(BENCH_JSON), a
# per-PR file, so older committed points are never clobbered.
bench-json:
	$(GO) test -run TestBenchJSON -timeout 30m -bench-json=$(BENCH_JSON) .

# The storage fault plane's CI gate: deterministic chaos injection (fixed
# seeds) over the sweep grid must leave every report byte-identical to
# cache-off, recover from torn writes, and survive a vanished cache dir.
chaos-short:
	$(GO) test -run 'TestDiskCacheChaos|TestDiskCacheTornWrite|TestDiskCacheVanishedDir' -v ./internal/harness

# Live-telemetry demo: run a sensitivity sweep with the OTLP exporter served
# on a local port, and attach the terminal dashboard to it. The sweep exits
# on its own; the watcher follows the stream until it closes.
WATCH_ADDR ?= 127.0.0.1:7788
watch-demo: build
	$(GO) build -o ./restbench ./cmd/restbench
	./restbench -fig8sens -scale 4 -j 4 -serve $(WATCH_ADDR) >/dev/null 2>&1 & \
	sleep 1 && ./restbench -watch $(WATCH_ADDR); \
	wait

# Remove the conventional local persistent cache directory (what you pass to
# restbench -cache-dir when you want a project-local store).
clean-cache:
	rm -rf $(CACHE_DIR)

verify: vet test race
