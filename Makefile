# Developer / CI entry points. The repo is stdlib-only; everything below is
# plain `go` tool invocations.
#
#   make test        tier-1 gate: build everything, run the full test suite
#   make race        the parallel sweep engine under the race detector
#   make fuzz-short  brief run of every native fuzz target (seed corpus +
#                    FUZZTIME of new inputs each)
#   make faults      the §V fault-injection campaign (deterministic in SEED)
#   make bench       regenerate every figure/table as benchmarks
#   make bench-smoke every benchmark in every package, one iteration each —
#                    proves the bench suite still compiles and runs
#   make verify      what CI runs: vet + test + race

GO       ?= go
FUZZTIME ?= 10s
SEED     ?= 42

.PHONY: build vet test race fuzz-short faults bench bench-smoke verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

# `go test -fuzz` accepts a single package per invocation.
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzEncodeDecode  -fuzztime=$(FUZZTIME) ./internal/isa
	$(GO) test -run='^$$' -fuzz=FuzzDecodeProgram -fuzztime=$(FUZZTIME) ./internal/isa
	$(GO) test -run='^$$' -fuzz=FuzzEncodeDecode  -fuzztime=$(FUZZTIME) ./internal/asm
	$(GO) test -run='^$$' -fuzz=FuzzTokenDetector -fuzztime=$(FUZZTIME) ./internal/core

faults:
	$(GO) run ./cmd/restbench -faults -seed $(SEED) -csv

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# One iteration of every benchmark in every package: a cheap CI gate that
# keeps the bench suite from bit-rotting between real benchmarking sessions.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

verify: vet test race
