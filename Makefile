# Developer / CI entry points. The repo is stdlib-only; everything below is
# plain `go` tool invocations.
#
#   make test        tier-1 gate: build everything, run the full test suite
#   make race        the parallel sweep engine under the race detector
#   make fuzz-short  brief run of every native fuzz target (seed corpus +
#                    FUZZTIME of new inputs each)
#   make faults      the §V fault-injection campaign (deterministic in SEED)
#   make bench       regenerate every figure/table as benchmarks
#   make bench-smoke every benchmark in every package, one iteration each —
#                    proves the bench suite still compiles and runs
#   make bench-json  measure the trace-cache capture/replay A/B and record it
#                    as BENCH_4.json (the perf trajectory artifact)
#   make verify      what CI runs: vet + test + race

GO       ?= go
FUZZTIME ?= 10s
SEED     ?= 42

.PHONY: build vet test race fuzz-short faults bench bench-smoke bench-json verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# The harness package's differential suites run close to go test's default
# 10-minute per-package deadline under the race detector (they already
# subset their workload grids when built with -race); give them headroom.
race:
	$(GO) test -race -timeout 20m ./...

# `go test -fuzz` accepts a single package per invocation.
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzEncodeDecode  -fuzztime=$(FUZZTIME) ./internal/isa
	$(GO) test -run='^$$' -fuzz=FuzzDecodeProgram -fuzztime=$(FUZZTIME) ./internal/isa
	$(GO) test -run='^$$' -fuzz=FuzzEncodeDecode  -fuzztime=$(FUZZTIME) ./internal/asm
	$(GO) test -run='^$$' -fuzz=FuzzTokenDetector -fuzztime=$(FUZZTIME) ./internal/core

faults:
	$(GO) run ./cmd/restbench -faults -seed $(SEED) -csv

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# One iteration of every benchmark in every package: a cheap CI gate that
# keeps the bench suite from bit-rotting between real benchmarking sessions.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# The Figure 8 sensitivity sweep, cache on vs cache off (best of two rounds
# each), recorded as a machine-readable point of the perf trajectory.
bench-json:
	$(GO) test -run TestBenchJSON -bench-json=BENCH_4.json .

verify: vet test race
