# Developer / CI entry points. The repo is stdlib-only; everything below is
# plain `go` tool invocations.
#
#   make test        tier-1 gate: build everything, run the full test suite
#   make race        the parallel sweep engine under the race detector
#   make fuzz-short  brief run of every native fuzz target (seed corpus +
#                    FUZZTIME of new inputs each)
#   make bench       regenerate every figure/table as benchmarks
#   make verify      what CI runs: test + race

GO       ?= go
FUZZTIME ?= 10s

.PHONY: build test race fuzz-short bench verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

# `go test -fuzz` accepts a single package per invocation.
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzEncodeDecode  -fuzztime=$(FUZZTIME) ./internal/isa
	$(GO) test -run='^$$' -fuzz=FuzzDecodeProgram -fuzztime=$(FUZZTIME) ./internal/isa
	$(GO) test -run='^$$' -fuzz=FuzzEncodeDecode  -fuzztime=$(FUZZTIME) ./internal/asm

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

verify: test race
