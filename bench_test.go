// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VI), plus component microbenchmarks and the ablation studies DESIGN.md
// calls out. Reported custom metrics carry the paper-comparable numbers:
// overhead percentages (paper Figure 7: REST secure ≈ 2%, debug ≈ 25%,
// ASan ≈ 40%), detection lag, and simulator throughput.
//
// Run with: go test -bench=. -benchmem
package rest_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"rest"
	"rest/internal/attack"
	"rest/internal/bpred"
	"rest/internal/cache"
	"rest/internal/core"
	"rest/internal/cpu"
	"rest/internal/harness"
	"rest/internal/isa"
	"rest/internal/obs/otlp"
	"rest/internal/persist"
	"rest/internal/prog"
	"rest/internal/sim"
	"rest/internal/trace"
	"rest/internal/workload"
	"rest/internal/world"
)

// benchScale keeps the full matrices tractable under `go test -bench=.`;
// cmd/restbench -scale N runs the long versions.
const benchScale = 2

// BenchmarkFigure1Heartbleed runs the Listing 1 attack under heap-only REST
// (the legacy-binary deployment) through the timing model and reports the
// detection lag of the imprecise secure-mode exception.
func BenchmarkFigure1Heartbleed(b *testing.B) {
	a, _ := attack.ByName("heartbleed")
	var lag, cycles uint64
	for i := 0; i < b.N; i++ {
		w, err := world.Build(world.Spec{Pass: prog.RESTHeap(64), Mode: core.Secure}, a.Build)
		if err != nil {
			b.Fatal(err)
		}
		stats, out := w.RunTimed()
		if out.Exception == nil {
			b.Fatal("heartbleed not detected")
		}
		lag = out.Exception.DetectLagCycles
		cycles = stats.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles-to-detect")
	b.ReportMetric(float64(lag), "detect-lag-cycles")
}

// BenchmarkFigure3ASanBreakdown regenerates the ASan component breakdown and
// reports the suite-mean marginal overhead of each component.
func BenchmarkFigure3ASanBreakdown(b *testing.B) {
	var r *harness.Fig3Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = harness.RunFig3(context.Background(), workload.All(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	means := make([]float64, len(harness.Fig3Components))
	for _, wl := range r.Workloads {
		for i, v := range r.Breakdown[wl] {
			means[i] += v / float64(len(r.Workloads))
		}
	}
	b.ReportMetric(means[0], "alloc-%")
	b.ReportMetric(means[1], "stack-%")
	b.ReportMetric(means[2], "checks-%")
	b.ReportMetric(means[3], "intercept-%")
}

// BenchmarkFigure7Overheads regenerates the headline result: the full
// workload × configuration overhead matrix. The reported metrics are the
// weighted arithmetic means the paper quotes (REST secure 2%, debug 25%,
// ASan ~40% at SPEC scale).
func BenchmarkFigure7Overheads(b *testing.B) {
	var m *harness.Matrix
	var err error
	for i := 0; i < b.N; i++ {
		m, err = harness.RunMatrix(workload.All(), harness.Fig7Configs(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.WtdAriMeanOverhead("asan"), "asan-%")
	b.ReportMetric(m.WtdAriMeanOverhead("secure-full"), "secure-full-%")
	b.ReportMetric(m.WtdAriMeanOverhead("secure-heap"), "secure-heap-%")
	b.ReportMetric(m.WtdAriMeanOverhead("debug-full"), "debug-full-%")
	b.ReportMetric(m.WtdAriMeanOverhead("perfecthw-full"), "perfecthw-full-%")
}

// BenchmarkFigure7OverheadsParallel is the same Figure 7 sweep on the
// parallel engine at the full core count. Comparing its wall clock against
// BenchmarkFigure7Overheads shows the sweep speedup; the cycle matrices are
// guaranteed identical (pinned by the harness determinism tests).
func BenchmarkFigure7OverheadsParallel(b *testing.B) {
	opt := harness.ParallelOptions{Workers: runtime.GOMAXPROCS(0)}
	var m *harness.Matrix
	var err error
	for i := 0; i < b.N; i++ {
		m, err = harness.RunMatrixParallel(context.Background(),
			workload.All(), harness.Fig7Configs(), benchScale, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(opt.EffectiveWorkers()), "workers")
	b.ReportMetric(m.WtdAriMeanOverhead("asan"), "asan-%")
	b.ReportMetric(m.WtdAriMeanOverhead("secure-full"), "secure-full-%")
}

// BenchmarkFigure8TokenWidths sweeps 16/32/64-byte tokens in secure mode;
// the paper's finding is that width does not significantly affect
// performance.
func BenchmarkFigure8TokenWidths(b *testing.B) {
	cfgs := append(harness.Fig8Configs(),
		harness.BinaryConfig{Name: "plain", Pass: prog.Plain()})
	var m *harness.Matrix
	var err error
	for i := 0; i < b.N; i++ {
		m, err = harness.RunMatrix(workload.All(), cfgs, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.WtdAriMeanOverhead("16-full"), "w16-full-%")
	b.ReportMetric(m.WtdAriMeanOverhead("32-full"), "w32-full-%")
	b.ReportMetric(m.WtdAriMeanOverhead("64-full"), "w64-full-%")
}

// runFig8Sensitivity times one Figure 8 sensitivity sweep, with or without
// the trace cache, and returns the wall clock plus the cache counters.
func runFig8Sensitivity(tb testing.TB, cached bool) (time.Duration, uint64, uint64) {
	tb.Helper()
	opt := harness.ParallelOptions{Workers: runtime.GOMAXPROCS(0)}
	var tc *harness.TraceCache
	if cached {
		tc = harness.NewTraceCache()
		opt.TraceCache = tc
	}
	start := time.Now()
	if _, err := harness.RunFig8Sensitivity(context.Background(), workload.All(), benchScale, opt); err != nil {
		tb.Fatal(err)
	}
	wall := time.Since(start)
	if tc == nil {
		return wall, 0, 0
	}
	hits, misses, _ := tc.Counters()
	return wall, hits, misses
}

// BenchmarkFig8CaptureReplay is the tentpole's headline A/B: the Figure 8
// timing-sensitivity sweep with the trace cache on (each build executes once,
// its timing variants replay) versus off (every cell re-executes the
// functional simulator). The sweep reports are byte-identical either way —
// the replay differential tests pin that — so "reduction-%" is pure saved
// wall clock.
func BenchmarkFig8CaptureReplay(b *testing.B) {
	var on, off time.Duration
	for i := 0; i < b.N; i++ {
		don, _, _ := runFig8Sensitivity(b, true)
		doff, _, _ := runFig8Sensitivity(b, false)
		on += don
		off += doff
	}
	b.ReportMetric(float64(on.Nanoseconds())/float64(b.N), "cacheon-ns")
	b.ReportMetric(float64(off.Nanoseconds())/float64(b.N), "cacheoff-ns")
	b.ReportMetric(100*(1-float64(on)/float64(off)), "reduction-%")
}

// runFig8SensitivityDisk times one Figure 8 sensitivity sweep against a
// persistent cache directory (a fresh TraceCache each call, so every hit is
// the disk tiers' doing, not in-process memory) and returns the wall clock
// with the store's counters.
func runFig8SensitivityDisk(tb testing.TB, dir string, popt persist.Options) (time.Duration, persist.Counters) {
	tb.Helper()
	pc, err := persist.Open(dir, popt)
	if err != nil {
		tb.Fatal(err)
	}
	defer pc.Close()
	tc := harness.NewTraceCache()
	tc.AttachDisk(pc)
	opt := harness.ParallelOptions{Workers: runtime.GOMAXPROCS(0), TraceCache: tc}
	start := time.Now()
	if _, err := harness.RunFig8Sensitivity(context.Background(), workload.All(), benchScale, opt); err != nil {
		tb.Fatal(err)
	}
	return time.Since(start), pc.Counters()
}

// BenchmarkFig8DiskColdWarm pairs a cold persistent cache (empty directory:
// every cell captures and stores) against a warm one (every cell served from
// the result store) on the Figure 8 sensitivity sweep. The reports are
// byte-identical either way — the disk differential tests pin that — so
// "warm-reduction-%" is pure saved wall clock across processes.
func BenchmarkFig8DiskColdWarm(b *testing.B) {
	var cold, warm time.Duration
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		dc, _ := runFig8SensitivityDisk(b, dir, persist.Options{})
		dw, _ := runFig8SensitivityDisk(b, dir, persist.Options{})
		cold += dc
		warm += dw
	}
	b.ReportMetric(float64(cold.Nanoseconds())/float64(b.N), "cold-ns")
	b.ReportMetric(float64(warm.Nanoseconds())/float64(b.N), "warm-ns")
	b.ReportMetric(100*(1-float64(warm)/float64(cold)), "warm-reduction-%")
}

// runFig8SensitivityHTTP is runFig8SensitivityDisk's twin over the wire: the
// same sweep against a cache served by the HTTP backend instead of a local
// directory handle. The backend is a parameter, not a local, because its
// read-through memory cache is part of what the warm leg measures: a
// long-lived worker reusing one backend serves repeat object reads from
// memory instead of re-crossing the wire every sweep.
func runFig8SensitivityHTTP(tb testing.TB, hb *persist.HTTPBackend, popt persist.Options) (time.Duration, persist.Counters) {
	tb.Helper()
	pc, err := persist.OpenBackend(hb, popt)
	if err != nil {
		tb.Fatal(err)
	}
	defer pc.Close()
	tc := harness.NewTraceCache()
	tc.AttachDisk(pc)
	opt := harness.ParallelOptions{Workers: runtime.GOMAXPROCS(0), TraceCache: tc}
	start := time.Now()
	if _, err := harness.RunFig8Sensitivity(context.Background(), workload.All(), benchScale, opt); err != nil {
		tb.Fatal(err)
	}
	return time.Since(start), pc.Counters()
}

// buildRestbench compiles the CLI once for the separate-process shard
// measurements and returns the binary path.
func buildRestbench(tb testing.TB) string {
	tb.Helper()
	bin := filepath.Join(tb.TempDir(), "restbench")
	out, err := exec.Command("go", "build", "-o", bin, "./cmd/restbench").CombinedOutput()
	if err != nil {
		tb.Fatalf("go build ./cmd/restbench: %v\n%s", err, out)
	}
	return bin
}

// runRestbenchStdout runs the CLI once and returns its report bytes.
func runRestbenchStdout(tb testing.TB, bin string, args ...string) []byte {
	tb.Helper()
	var out, errs bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = &out, &errs
	if err := cmd.Run(); err != nil {
		tb.Fatalf("restbench %s: %v\n%s", strings.Join(args, " "), err, errs.Bytes())
	}
	return out.Bytes()
}

// serveCacheDir exposes dir over the cache wire protocol on a loopback
// listener and returns the URL shard processes attach to.
func serveCacheDir(tb testing.TB, dir string) string {
	tb.Helper()
	b, err := persist.NewDirBackend(dir, false)
	if err != nil {
		tb.Fatal(err)
	}
	mux := http.NewServeMux()
	persist.NewCacheServer(b).Register(mux)
	srv := httptest.NewServer(mux)
	tb.Cleanup(srv.Close)
	return srv.URL
}

// poolMeasurement names the single metric every multi-process arm in this
// file — the 1/2/4 shard arms and the elastic pool arms alike — is scored
// with, so speedup ratios always compare like with like. With enough cores
// for the widest arm plus the cache server, every process truly runs in
// parallel and wall clock is the honest number. On smaller machines (CI
// boxes are often 1-2 cores) the wall of N concurrent CPU-bound processes
// only measures the kernel slicing one core, so every arm — including the
// single-process baseline — is instead scored by its CPU makespan: the
// largest CPU time (user+system) any surviving process consumed, which
// models the wall clock of the deployment the fan-out targets (one machine
// per worker, where lease-wait stalls park a core instead of burning it).
// Either way all processes launch concurrently and every arm is measured
// identically; earlier revisions mixed a concurrent wall for the baseline
// with a per-shard maximum for the fan-out arms, which skewed the ratio.
func poolMeasurement() string {
	if runtime.NumCPU() >= 5 {
		return "wall-concurrent"
	}
	return "cpu-makespan-concurrent"
}

// runProcPool launches n worker processes concurrently and scores the arm
// under poolMeasurement(). kill, when non-nil, runs while the pool works and
// returns the index of a process it terminated: that process models a
// crashed machine, so its exit status, partial CPU time, and output are all
// ignored. Surviving workers must exit clean with an empty stdout; their
// stderr is returned for summary parsing, indexed by worker.
func runProcPool(tb testing.TB, n int, mk func(k int, out, errs *bytes.Buffer) *exec.Cmd, kill func(cmds []*exec.Cmd) int) (time.Duration, []string) {
	tb.Helper()
	cmds := make([]*exec.Cmd, n)
	outs := make([]bytes.Buffer, n)
	errs := make([]bytes.Buffer, n)
	start := time.Now()
	for k := range cmds {
		cmds[k] = mk(k, &outs[k], &errs[k])
		if err := cmds[k].Start(); err != nil {
			tb.Fatal(err)
		}
	}
	killed := -1
	if kill != nil {
		killed = kill(cmds)
	}
	var cpuMax time.Duration
	var stderrs []string
	for k, cmd := range cmds {
		err := cmd.Wait()
		if k == killed {
			stderrs = append(stderrs, "")
			continue
		}
		if err != nil {
			tb.Fatalf("worker %d/%d: %v\n%s", k+1, n, err, errs[k].Bytes())
		}
		if outs[k].Len() > 0 {
			tb.Fatalf("worker %d/%d printed to stdout:\n%s", k+1, n, outs[k].Bytes())
		}
		st := cmd.ProcessState
		if c := st.UserTime() + st.SystemTime(); c > cpuMax {
			cpuMax = c
		}
		stderrs = append(stderrs, errs[k].String())
	}
	if poolMeasurement() == "wall-concurrent" {
		return time.Since(start), stderrs
	}
	return cpuMax, stderrs
}

// runShardProcesses measures an n-shard cold distributed sweep: n
// single-worker restbench shard processes sharing one cache server, separate
// OS processes and wire protocol included.
func runShardProcesses(tb testing.TB, bin, url string, n int) time.Duration {
	tb.Helper()
	d, _ := runProcPool(tb, n, func(k int, out, errs *bytes.Buffer) *exec.Cmd {
		cmd := exec.Command(bin, "-fig8sens",
			"-scale", strconv.Itoa(benchScale), "-j", "1",
			"-shard", fmt.Sprintf("%d/%d", k+1, n), "-cache-url", url)
		cmd.Stdout, cmd.Stderr = out, errs
		return cmd
	}, nil)
	return d
}

// benchStaleAge is the lease staleness horizon elastic bench workers run
// with: long enough that a live worker (renewing at a quarter of this) is
// never mistaken for dead, short enough that a killed worker's claim is
// re-stolen well before the survivors drain their own share.
const benchStaleAge = "2s"

// runElasticPool measures an n-worker elastic cold sweep over a freshly
// served cache dir: every worker joins with -shard auto and the pool drains
// by work stealing. When killAtMarkers > 0, worker 0 is SIGKILLed as soon as
// that many unit completion markers exist in the store — mid-sweep, so the
// survivors must steal its lease and finish its share.
func runElasticPool(tb testing.TB, bin, url, dir string, n, killAtMarkers int) (time.Duration, []elasticSummary) {
	tb.Helper()
	mk := func(k int, out, errs *bytes.Buffer) *exec.Cmd {
		cmd := exec.Command(bin, "-fig8sens",
			"-scale", strconv.Itoa(benchScale), "-j", "1",
			"-shard", "auto", "-cache-url", url, "-cache-stale-age", benchStaleAge)
		cmd.Stdout, cmd.Stderr = out, errs
		return cmd
	}
	var kill func(cmds []*exec.Cmd) int
	if killAtMarkers > 0 {
		kill = func(cmds []*exec.Cmd) int {
			deadline := time.Now().Add(10 * time.Minute)
			for countElasticMarkers(tb, dir) < killAtMarkers {
				if time.Now().After(deadline) {
					tb.Fatalf("elastic pool published fewer than %d markers in 10m", killAtMarkers)
				}
				time.Sleep(20 * time.Millisecond)
			}
			if err := cmds[0].Process.Kill(); err != nil {
				tb.Fatal(err)
			}
			return 0
		}
	}
	d, stderrs := runProcPool(tb, n, mk, kill)
	var sums []elasticSummary
	for k, s := range stderrs {
		if killAtMarkers > 0 && k == 0 {
			continue
		}
		sums = append(sums, parseElasticSummary(tb, s))
	}
	return d, sums
}

// countElasticMarkers counts published unit completion markers in a served
// cache directory. Markers are meta objects, which a DirBackend keeps at the
// directory root under their literal names.
func countElasticMarkers(tb testing.TB, dir string) int {
	tb.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		tb.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), harness.ElasticMarkerPrefix) {
			n++
		}
	}
	return n
}

// elasticSummary is one worker's parsed "elastic pool:" stderr line.
type elasticSummary struct {
	claimed, units, stolen, done, skipped, leaseLost, cells, waits int
}

func parseElasticSummary(tb testing.TB, stderr string) elasticSummary {
	tb.Helper()
	i := strings.Index(stderr, "elastic pool: ")
	if i < 0 {
		tb.Fatalf("no elastic pool summary in worker stderr:\n%s", stderr)
	}
	var s elasticSummary
	if _, err := fmt.Sscanf(stderr[i:],
		"elastic pool: claimed %d of %d units (%d stolen), %d done, %d already published, %d lease-lost, %d cells computed, %d drain waits",
		&s.claimed, &s.units, &s.stolen, &s.done, &s.skipped, &s.leaseLost, &s.cells, &s.waits); err != nil {
		tb.Fatalf("malformed elastic pool summary (%v):\n%s", err, stderr[i:])
	}
	return s
}

// benchJSONPath gates TestBenchJSON: `make bench-json` passes
// -bench-json=BENCH_<n>.json (one artifact per PR; see the Makefile's
// BENCH_JSON variable) to record the sweep A/Bs as committed machine-readable
// artifacts.
var benchJSONPath = flag.String("bench-json", "", "write the sweep A/B measurements to this JSON file")

// simColdRate measures cold functional throughput (fresh world per round,
// best of rounds to shed scheduler noise) for one engine, in user
// instructions per second.
func simColdRate(tb testing.TB, e sim.Engine) float64 {
	tb.Helper()
	wl, _ := workload.ByName("lbm")
	best := 0.0
	for round := 0; round < 3; round++ {
		w, err := world.Build(world.Spec{Pass: prog.Plain(), Engine: e}, wl.Build(benchScale))
		if err != nil {
			tb.Fatal(err)
		}
		start := time.Now()
		out := w.RunFunctional()
		if out.Err != nil {
			tb.Fatal(out.Err)
		}
		if rate := float64(w.Machine.UserInstrs) / time.Since(start).Seconds(); rate > best {
			best = rate
		}
	}
	return best
}

// TestBenchJSON measures the Figure 8 sensitivity sweep four ways — in-memory
// trace cache on/off (interleaved best of three rounds, to shed host noise), then
// persistent cache cold and warm — plus the interpreter A/B and the
// distributed plane (separate-process shard scaling, HTTP-vs-directory warm
// tax), and writes the results to the -bench-json path. The floors enforced
// so the committed artifact can never record a regression silently: the warm
// persistent-cache sweep must come in at least 60% under the cold one, the
// decoded-block engine must deliver at least 3x the reference interpreter's
// cold throughput, the hardening middleware (retry + breaker) must cost
// under 5% on the warm path versus the bare backend, two shard processes
// must finish a cold distributed sweep at least 1.6x faster than one
// (concurrently when the machine has the cores, else modeled as the slowest
// shard run back-to-back — one machine per shard), and the HTTP backend's
// warm path must stay within 5% plus a fixed wire budget of the local
// directory's. Skipped unless the flag is set.
func TestBenchJSON(t *testing.T) {
	if *benchJSONPath == "" {
		t.Skip("set -bench-json=FILE to record the sweep measurements")
	}
	refRate := simColdRate(t, sim.EngineRef)
	blkRate := simColdRate(t, sim.EngineBlocks)
	speedup := blkRate / refRate
	if speedup < 3 {
		t.Errorf("decoded-block engine only %.2fx the reference interpreter (ref=%.0f blocks=%.0f instrs/s), want >= 3x",
			speedup, refRate, blkRate)
	}
	// Interleaved best-of-three, so a host-level noise burst (this can run
	// in a single-core VM whose physical CPU is shared) cannot land on just
	// one side of the A/B; the gate then allows 5% measurement tolerance
	// while the artifact records the real reduction.
	var on, off time.Duration
	var hits, misses uint64
	for round := 0; round < 3; round++ {
		if w, h, m := runFig8Sensitivity(t, true); round == 0 || w < on {
			on, hits, misses = w, h, m
		}
		if w, _, _ := runFig8Sensitivity(t, false); round == 0 || w < off {
			off = w
		}
	}
	reduction := 100 * (1 - float64(on)/float64(off))
	if on > off+off/20 {
		t.Errorf("trace cache did not reduce sweep wall clock: on=%s off=%s (%.1f%%)", on, off, reduction)
	}

	dir := t.TempDir()
	cold, coldC := runFig8SensitivityDisk(t, dir, persist.Options{})
	warm, warmC := runFig8SensitivityDisk(t, dir, persist.Options{})
	warmReduction := 100 * (1 - float64(warm)/float64(cold))
	if warmReduction < 60 {
		t.Errorf("warm persistent-cache sweep only %.1f%% under cold (cold=%s warm=%s), want >= 60%%",
			warmReduction, cold, warm)
	}
	if warmC.ResultHits == 0 {
		t.Errorf("warm sweep never hit the result store: %+v", warmC)
	}

	// The storage fault plane's cost on the warm path: the same warm sweep
	// with the hardening stack in its default shape (retry + breaker wrapping
	// every backend op) versus with both layers disabled. A/B on an already
	// warm directory, best of two rounds each, interleaved so neither side
	// owns the quieter half of the machine. The floor is <5% overhead, with a
	// small absolute epsilon so a few milliseconds of scheduler noise on a
	// short sweep cannot fail the gate.
	bareOpt := persist.Options{Retries: -1, BreakerThreshold: -1}
	hardenedWarm, bareWarm := warm, time.Duration(0)
	for round := 0; round < 2; round++ {
		if bw, _ := runFig8SensitivityDisk(t, dir, bareOpt); round == 0 || bw < bareWarm {
			bareWarm = bw
		}
		if hw, _ := runFig8SensitivityDisk(t, dir, persist.Options{}); hw < hardenedWarm {
			hardenedWarm = hw
		}
	}
	hardeningOverhead := 100 * (float64(hardenedWarm)/float64(bareWarm) - 1)
	if hardenedWarm > bareWarm+bareWarm/20+50*time.Millisecond {
		t.Errorf("hardening stack costs %.1f%% on the warm path (bare=%s hardened=%s), want < 5%%",
			hardeningOverhead, bareWarm, hardenedWarm)
	}

	// The distributed plane, scaling leg: N separate shard processes (one
	// sweep worker each, so parallelism comes purely from the process
	// fan-out) share one cold cache server; the measured cost should drop
	// roughly with the process count. Floor: >= 1.6x at two shards. Every
	// arm is scored under the one metric poolMeasurement() names (recorded
	// as shard_measurement in the artifact).
	bin := buildRestbench(t)
	shardWall := map[int]time.Duration{}
	for _, n := range []int{1, 2, 4} {
		shardWall[n] = runShardProcesses(t, bin, serveCacheDir(t, t.TempDir()), n)
	}
	shardSpeedup2 := float64(shardWall[1]) / float64(shardWall[2])
	shardSpeedup4 := float64(shardWall[1]) / float64(shardWall[4])
	if shardSpeedup2 < 1.6 {
		t.Errorf("2-shard cold sweep only %.2fx the 1-shard cost (1=%s 2=%s, %s), want >= 1.6x",
			shardSpeedup2, shardWall[1], shardWall[2], poolMeasurement())
	}

	// The elastic plane: a 3-worker work-stealing pool over a fresh store,
	// with worker 0 killed once half the grid's unit markers are published —
	// the survivors must steal its lease, finish its share, and drain the
	// grid without recomputing anything already published. Scored against a
	// single elastic worker under the same metric. The ideal with a clean
	// halfway kill is ~2.4x (each worker does 1/6 of the work before the
	// kill, the survivors split the remaining half), so the 2.2x floor
	// leaves room for the stolen unit's replay and scheduler noise.
	units := harness.UnitCount(workload.All(), harness.Fig8SensitivityConfigs(), benchScale, 0)
	solo1Dir := t.TempDir()
	elastic1, _ := runElasticPool(t, bin, serveCacheDir(t, solo1Dir), solo1Dir, 1, 0)
	elasticDir := t.TempDir()
	elasticURL := serveCacheDir(t, elasticDir)
	elastic3, sums := runElasticPool(t, bin, elasticURL, elasticDir, 3, units/2)
	elasticSpeedup := float64(elastic1) / float64(elastic3)
	if elasticSpeedup < 2.2 {
		t.Errorf("3-worker elastic sweep with a halfway kill only %.2fx one worker (1=%s 3=%s, %s), want >= 2.2x",
			elasticSpeedup, elastic1, elastic3, poolMeasurement())
	}
	if got := countElasticMarkers(t, elasticDir); got != units {
		t.Errorf("elastic pool drained with %d of %d unit markers", got, units)
	}
	var stolen int
	for _, s := range sums {
		stolen += s.stolen
	}
	if stolen == 0 {
		t.Errorf("no survivor stole the killed worker's lease: %+v", sums)
	}
	// Published-exactly-once, checked through the scheduler itself: a late
	// worker joining the drained pool must find every unit already
	// published and compute nothing.
	_, verifySums := runElasticPool(t, bin, elasticURL, elasticDir, 1, 0)
	if v := verifySums[0]; v.cells != 0 || v.done != 0 {
		t.Errorf("drained elastic grid was recomputed by a late worker: %+v", v)
	}
	// And the merge of the pool's artifacts must be byte-identical to a
	// plain single-process sweep's report.
	soloOut := runRestbenchStdout(t, bin, "-fig8sens", "-scale", strconv.Itoa(benchScale))
	mergeOut := runRestbenchStdout(t, bin, "-fig8sens", "-scale", strconv.Itoa(benchScale),
		"-cache-url", elasticURL, "-merge")
	if !bytes.Equal(soloOut, mergeOut) {
		t.Errorf("elastic merge is not byte-identical to the single-process report (%d vs %d bytes)",
			len(mergeOut), len(soloOut))
	}

	// The distributed plane, wire-tax leg: the warm sweep served by the HTTP
	// backend through a loopback cache server over the directory the disk
	// A/B warmed above, versus straight off that directory. One backend is
	// shared across rounds — the long-lived-worker shape — so the first
	// sweep pays the wire for every object and warms the backend's
	// read-through memory cache, and later sweeps measure the warm path the
	// cache exists for. Before that cache, this leg ran at ~380% of the
	// directory sweep; the gate now holds it to 50% plus a small absolute
	// epsilon for the requests that still must cross the wire (manifest and
	// marker meta reads are never cached).
	httpURL := serveCacheDir(t, dir)
	hb, err := persist.NewHTTPBackend(httpURL, persist.HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	httpCold, _ := runFig8SensitivityHTTP(t, hb, persist.Options{})
	httpWarm, httpC := runFig8SensitivityHTTP(t, hb, persist.Options{})
	if h2, _ := runFig8SensitivityHTTP(t, hb, persist.Options{}); h2 < httpWarm {
		httpWarm = h2
	}
	if httpC.ResultHits == 0 {
		t.Errorf("HTTP warm sweep never hit the result store: %+v", httpC)
	}
	httpWire := hb.Counters()
	if httpWire.ReadHits == 0 {
		t.Errorf("HTTP warm sweep never hit the read-through cache: %+v", httpWire)
	}
	httpOverhead := 100 * (float64(httpWarm)/float64(hardenedWarm) - 1)
	if httpWarm > hardenedWarm+hardenedWarm/2+100*time.Millisecond {
		t.Errorf("HTTP warm sweep %s vs dir %s (+%.1f%%), want within 50%% + 100ms wire budget",
			httpWarm, hardenedWarm, httpOverhead)
	}

	// The telemetry exporter's cost on the same sweep: per-cell OTLP span
	// encoding and publication to a concurrently draining stream subscriber,
	// versus no telemetry at all. A/B interleaved, best of three rounds each
	// (host noise on a shared-CPU VM runs to a few percent of these sweeps).
	// The floor is <2% overhead with the same absolute epsilon as the
	// hardening gate — the exporter sits outside the simulation entirely, so
	// anything above that is a regression in the glue.
	teleBare, teleExport := time.Duration(0), time.Duration(0)
	for round := 0; round < 3; round++ {
		if tb := runFig8SensitivityTelemetry(t, false); round == 0 || tb < teleBare {
			teleBare = tb
		}
		if te := runFig8SensitivityTelemetry(t, true); round == 0 || te < teleExport {
			teleExport = te
		}
	}
	telemetryOverhead := 100 * (float64(teleExport)/float64(teleBare) - 1)
	if teleExport > teleBare+teleBare/50+50*time.Millisecond {
		t.Errorf("telemetry exporter costs %.1f%% on the sweep (bare=%s exported=%s), want < 2%%",
			telemetryOverhead, teleBare, teleExport)
	}

	out := struct {
		Benchmark        string  `json:"benchmark"`
		Scale            int64   `json:"scale"`
		Workers          int     `json:"workers"`
		CacheOnNs        int64   `json:"cache_on_ns"`
		CacheOffNs       int64   `json:"cache_off_ns"`
		ReductionPct     float64 `json:"reduction_pct"`
		TraceHits        uint64  `json:"trace_hits"`
		TraceMisses      uint64  `json:"trace_misses"`
		DiskColdNs       int64   `json:"disk_cold_ns"`
		DiskWarmNs       int64   `json:"disk_warm_ns"`
		DiskReductionPct float64 `json:"disk_warm_reduction_pct"`
		DiskStores       uint64  `json:"disk_cold_stores"`
		DiskResultHits   uint64  `json:"disk_warm_result_hits"`
		DiskTraceHits    uint64  `json:"disk_warm_trace_hits"`
		WarmBareNs       int64   `json:"disk_warm_bare_ns"`
		WarmHardenedNs   int64   `json:"disk_warm_hardened_ns"`
		HardeningPct     float64 `json:"hardening_overhead_pct"`
		SimRefRate       float64 `json:"sim_ref_cold_instrs_per_sec"`
		SimBlocksRate    float64 `json:"sim_blocks_cold_instrs_per_sec"`
		SimSpeedup       float64 `json:"sim_blocks_speedup"`
		TelemetryBareNs  int64   `json:"telemetry_bare_ns"`
		TelemetryOnNs    int64   `json:"telemetry_export_ns"`
		TelemetryPct     float64 `json:"telemetry_overhead_pct"`
		ShardCold1Ns     int64   `json:"shard_cold_1proc_ns"`
		ShardCold2Ns     int64   `json:"shard_cold_2proc_ns"`
		ShardCold4Ns     int64   `json:"shard_cold_4proc_ns"`
		ShardSpeedup2    float64 `json:"shard_2proc_speedup"`
		ShardSpeedup4    float64 `json:"shard_4proc_speedup"`
		ShardMeasurement string  `json:"shard_measurement"`
		ElasticUnits     int     `json:"elastic_units"`
		Elastic1Ns       int64   `json:"elastic_cold_1worker_ns"`
		Elastic3KillNs   int64   `json:"elastic_cold_3worker_killed_ns"`
		ElasticSpeedup   float64 `json:"elastic_killed_speedup"`
		ElasticStolen    int     `json:"elastic_stolen_units"`
		HTTPColdNs       int64   `json:"http_cold_ns"`
		HTTPWarmNs       int64   `json:"http_warm_ns"`
		HTTPOverheadPct  float64 `json:"http_warm_overhead_pct"`
		HTTPResultHits   uint64  `json:"http_warm_result_hits"`
		HTTPReadHits     uint64  `json:"http_read_cache_hits"`
		HTTPReadSavedB   uint64  `json:"http_read_cache_saved_bytes"`
	}{
		Benchmark:        "Fig8SensitivityCaptureReplay",
		Scale:            benchScale,
		Workers:          runtime.GOMAXPROCS(0),
		CacheOnNs:        on.Nanoseconds(),
		CacheOffNs:       off.Nanoseconds(),
		ReductionPct:     reduction,
		TraceHits:        hits,
		TraceMisses:      misses,
		DiskColdNs:       cold.Nanoseconds(),
		DiskWarmNs:       warm.Nanoseconds(),
		DiskReductionPct: warmReduction,
		DiskStores:       coldC.Stores,
		DiskResultHits:   warmC.ResultHits,
		DiskTraceHits:    warmC.TraceHits,
		WarmBareNs:       bareWarm.Nanoseconds(),
		WarmHardenedNs:   hardenedWarm.Nanoseconds(),
		HardeningPct:     hardeningOverhead,
		SimRefRate:       refRate,
		SimBlocksRate:    blkRate,
		SimSpeedup:       speedup,
		TelemetryBareNs:  teleBare.Nanoseconds(),
		TelemetryOnNs:    teleExport.Nanoseconds(),
		TelemetryPct:     telemetryOverhead,
		ShardCold1Ns:     shardWall[1].Nanoseconds(),
		ShardCold2Ns:     shardWall[2].Nanoseconds(),
		ShardCold4Ns:     shardWall[4].Nanoseconds(),
		ShardSpeedup2:    shardSpeedup2,
		ShardSpeedup4:    shardSpeedup4,
		ShardMeasurement: poolMeasurement(),
		ElasticUnits:     units,
		Elastic1Ns:       elastic1.Nanoseconds(),
		Elastic3KillNs:   elastic3.Nanoseconds(),
		ElasticSpeedup:   elasticSpeedup,
		ElasticStolen:    stolen,
		HTTPColdNs:       httpCold.Nanoseconds(),
		HTTPWarmNs:       httpWarm.Nanoseconds(),
		HTTPOverheadPct:  httpOverhead,
		HTTPResultHits:   httpC.ResultHits,
		HTTPReadHits:     httpWire.ReadHits,
		HTTPReadSavedB:   httpWire.ReadSavedBytes,
	}
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchJSONPath, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("mem cache on %s / off %s (%.1f%%); disk cold %s / warm %s (%.1f%%); hardening %+.1f%%; telemetry %+.1f%%; sim blocks %.2fx ref; shards 1/2/4 %s/%s/%s (%.2fx/%.2fx, %s); elastic 1w %s / 3w-killed %s (%.2fx, %d stolen); http warm %s (%+.1f%%, %d read hits) -> %s",
		on, off, reduction, cold, warm, warmReduction, hardeningOverhead, telemetryOverhead, speedup,
		shardWall[1], shardWall[2], shardWall[4], shardSpeedup2, shardSpeedup4, poolMeasurement(),
		elastic1, elastic3, elasticSpeedup, stolen, httpWarm, httpOverhead, httpWire.ReadHits, *benchJSONPath)
}

// runFig8SensitivityTelemetry times one Figure 8 sensitivity sweep with or
// without the streaming telemetry exporter attached: per-cell span encoding
// and publication, with one subscriber draining the stream concurrently (the
// realistic -serve + attached collector shape).
func runFig8SensitivityTelemetry(tb testing.TB, export bool) time.Duration {
	tb.Helper()
	opt := harness.ParallelOptions{Workers: runtime.GOMAXPROCS(0)}
	var tel *harness.TelemetryExporter
	var sub *otlp.Subscriber
	drained := make(chan struct{})
	if export {
		tel = harness.NewTelemetryExporter("restbench", nil)
		sub = tel.Bus.Subscribe(0)
		go func() {
			for range sub.C() {
			}
			close(drained)
		}()
		opt.OnCell = tel.OnCell("fig8sens")
	}
	start := time.Now()
	if _, err := harness.RunFig8Sensitivity(context.Background(), workload.All(), benchScale, opt); err != nil {
		tb.Fatal(err)
	}
	wall := time.Since(start)
	if export {
		tel.Bus.Unsubscribe(sub)
		<-drained
	}
	return wall
}

// BenchmarkTelemetryOverhead is the exporter A/B as a standalone paired
// benchmark (the committed BENCH artifact enforces the <2% floor via
// TestBenchJSON; this reports the same delta for ad-hoc runs).
func BenchmarkTelemetryOverhead(b *testing.B) {
	var bare, exported time.Duration
	for i := 0; i < b.N; i++ {
		bare += runFig8SensitivityTelemetry(b, false)
		exported += runFig8SensitivityTelemetry(b, true)
	}
	b.ReportMetric(float64(bare.Nanoseconds())/float64(b.N), "bare-ns")
	b.ReportMetric(float64(exported.Nanoseconds())/float64(b.N), "exported-ns")
	b.ReportMetric(100*(float64(exported)/float64(bare)-1), "telemetry-delta-%")
}

// BenchmarkObsOverhead pairs the Figure 3 sweep with the observability plane
// enabled (per-cell registries, live occupancy sampling, end-of-run flushes)
// against the default nil sink, on one worker so the comparison is pure
// simulation throughput. The contract is that the nil fast path keeps the
// disabled cost at zero and the enabled cost under a few percent;
// "obs-delta-%" reports the measured gap.
func BenchmarkObsOverhead(b *testing.B) {
	wls := workload.All()
	run := func(metrics bool) time.Duration {
		start := time.Now()
		_, err := harness.RunFig3Parallel(context.Background(), wls, benchScale,
			harness.ParallelOptions{Workers: 1, Metrics: metrics})
		if err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var nilSink, observed time.Duration
	for i := 0; i < b.N; i++ {
		nilSink += run(false)
		observed += run(true)
	}
	b.ReportMetric(float64(nilSink.Nanoseconds())/float64(b.N), "nilsink-ns")
	b.ReportMetric(float64(observed.Nanoseconds())/float64(b.N), "observed-ns")
	b.ReportMetric(100*(float64(observed)/float64(nilSink)-1), "obs-delta-%")
}

// BenchmarkTable1Semantics runs the Table I conformance matrix.
func BenchmarkTable1Semantics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, ok := harness.RunTableI(); !ok {
			b.Fatal("Table I conformance failed")
		}
	}
}

// BenchmarkMicroStats reproduces the §VI-B statistics for xalanc and reports
// the debug/secure ROB-store-blocking ratio (paper: ~an order of magnitude)
// and the token L2/memory crossing rate (paper: ~0.04/kinstr).
func BenchmarkMicroStats(b *testing.B) {
	wl, _ := workload.ByName("xalanc")
	var s *harness.MicroStats
	var err error
	for i := 0; i < b.N; i++ {
		s, err = harness.RunMicroStats(context.Background(), wl, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.DebugROBStoreBlock)/float64(s.SecureROBStoreBlock+1), "rob-block-ratio")
	b.ReportMetric(s.TokenL2MemPerKInstr, "tokens-l2mem/kinstr")
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationSerializedArm compares the paper's LSQ matching logic
// against the rejected simple alternative (serialize every arm/disarm);
// the reported metric is the extra overhead serialization would cost.
func BenchmarkAblationSerializedArm(b *testing.B) {
	wl, _ := workload.ByName("xalanc")
	var lsqCycles, serCycles uint64
	for i := 0; i < b.N; i++ {
		run := func(serialize bool) uint64 {
			ccfg := cpu.DefaultConfig()
			ccfg.SerializeArmDisarm = serialize
			w, err := world.Build(world.Spec{
				Pass: prog.RESTFull(64), Mode: core.Secure, CPU: &ccfg,
			}, wl.Build(benchScale))
			if err != nil {
				b.Fatal(err)
			}
			stats, out := w.RunTimed()
			if out.Err != nil || out.Detected() {
				b.Fatalf("unexpected outcome: %s", out)
			}
			return stats.Cycles
		}
		lsqCycles = run(false)
		serCycles = run(true)
	}
	b.ReportMetric(float64(lsqCycles), "lsq-check-cycles")
	b.ReportMetric(float64(serCycles), "serialized-cycles")
	b.ReportMetric(100*(float64(serCycles)/float64(lsqCycles)-1), "serialization-penalty-%")
}

// BenchmarkAblationQuarantine sweeps the quarantine capacity: larger
// quarantines lengthen the temporal-protection window at the cost of more
// token churn (§V-C "Temporal Protection").
func BenchmarkAblationQuarantine(b *testing.B) {
	wl, _ := workload.ByName("xalanc")
	caps := []uint64{32 << 10, 256 << 10, 2 << 20}
	names := []string{"cap32k-cycles", "cap256k-cycles", "cap2m-cycles"}
	var res [3]uint64
	for i := 0; i < b.N; i++ {
		for j, c := range caps {
			cc := c
			w, err := world.Build(world.Spec{
				Pass: prog.RESTHeap(64), Mode: core.Secure, QuarantineCap: &cc,
			}, wl.Build(benchScale))
			if err != nil {
				b.Fatal(err)
			}
			stats, out := w.RunTimed()
			if out.Err != nil || out.Detected() {
				b.Fatalf("unexpected outcome: %s", out)
			}
			res[j] = stats.Cycles
		}
	}
	for j, n := range names {
		b.ReportMetric(float64(res[j]), n)
	}
}

// BenchmarkAblationRedzone sweeps the redzone size: wider redzones catch
// longer jumps over the bookends but cost more arms per allocation.
func BenchmarkAblationRedzone(b *testing.B) {
	wl, _ := workload.ByName("gcc")
	sizes := []uint64{64, 128, 256}
	names := []string{"rz64-cycles", "rz128-cycles", "rz256-cycles"}
	var res [3]uint64
	for i := 0; i < b.N; i++ {
		for j, rz := range sizes {
			r := rz
			w, err := world.Build(world.Spec{
				Pass: prog.RESTHeap(64), Mode: core.Secure, RedzoneBytes: &r,
			}, wl.Build(benchScale))
			if err != nil {
				b.Fatal(err)
			}
			stats, out := w.RunTimed()
			if out.Err != nil || out.Detected() {
				b.Fatalf("unexpected outcome: %s", out)
			}
			res[j] = stats.Cycles
		}
	}
	for j, n := range names {
		b.ReportMetric(float64(res[j]), n)
	}
}

// --- Component microbenchmarks (simulator throughput) ---

// BenchmarkFunctionalSim measures architectural-simulation speed on the
// session default engine (the decoded-block interpreter).
func BenchmarkFunctionalSim(b *testing.B) {
	wl, _ := workload.ByName("lbm")
	b.ReportAllocs()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		w, err := world.Build(world.Spec{Pass: prog.Plain()}, wl.Build(1))
		if err != nil {
			b.Fatal(err)
		}
		out := w.RunFunctional()
		if out.Err != nil {
			b.Fatal(out.Err)
		}
		instrs = w.Machine.UserInstrs
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// benchSimCold measures cold functional-simulation throughput under one
// engine: every iteration builds a fresh world, so the block engine pays
// its full decode cost inside the timed region (there is no warm cache to
// hide behind — this is the honest end-to-end comparison).
func benchSimCold(b *testing.B, e sim.Engine) {
	wl, _ := workload.ByName("lbm")
	b.ReportAllocs()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		w, err := world.Build(world.Spec{Pass: prog.Plain(), Engine: e}, wl.Build(1))
		if err != nil {
			b.Fatal(err)
		}
		out := w.RunFunctional()
		if out.Err != nil {
			b.Fatal(out.Err)
		}
		instrs = w.Machine.UserInstrs
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkSimColdInstrsPerSecRef is the single-step reference interpreter's
// cold throughput; its Blocks twin below is the tentpole's A/B (the
// committed BENCH artifact enforces the >= 3x floor).
func BenchmarkSimColdInstrsPerSecRef(b *testing.B) { benchSimCold(b, sim.EngineRef) }

// BenchmarkSimColdInstrsPerSecBlocks is the decoded-block engine's cold
// throughput: basic-block cache, pre-resolved handlers, untraced dispatch.
func BenchmarkSimColdInstrsPerSecBlocks(b *testing.B) { benchSimCold(b, sim.EngineBlocks) }

// BenchmarkWorldConstruct measures world construction alone — program
// build, image encode, allocator/runtime/tracker wiring and the mem slab
// arena — the per-cell setup cost every sweep pays before its first
// simulated instruction.
func BenchmarkWorldConstruct(b *testing.B) {
	wl, _ := workload.ByName("lbm")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := world.Build(world.Spec{Pass: prog.RESTFull(64), Mode: core.Secure}, wl.Build(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimingSim measures full pipeline+cache simulation speed.
func BenchmarkTimingSim(b *testing.B) {
	wl, _ := workload.ByName("lbm")
	b.ReportAllocs()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		w, err := world.Build(world.Spec{Pass: prog.Plain()}, wl.Build(1))
		if err != nil {
			b.Fatal(err)
		}
		stats, out := w.RunTimed()
		if out.Err != nil {
			b.Fatal(out.Err)
		}
		instrs = stats.Instructions
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkTokenDetector measures the fill-time content detector.
func BenchmarkTokenDetector(b *testing.B) {
	w, err := rest.NewSystem(rest.RESTHeap(64), rest.Secure, func(bb *rest.ProgramBuilder) {
		f := bb.Func("main")
		p := f.Reg()
		f.CallMallocI(p, 4096)
	})
	if err != nil {
		b.Fatal(err)
	}
	w.RunFunctional()
	tr := w.Tracker
	tr.Arm(0x3000_0000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr.LineTokenMask(0x3000_0000) == 0 {
			b.Fatal("detector missed the token")
		}
	}
}

// BenchmarkArmDisarm measures the architectural arm/disarm pair.
func BenchmarkArmDisarm(b *testing.B) {
	w, err := rest.NewSystem(rest.RESTHeap(64), rest.Secure, func(bb *rest.ProgramBuilder) {
		bb.Func("main")
	})
	if err != nil {
		b.Fatal(err)
	}
	tr := w.Tracker
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if exc := tr.Arm(0x3000_0000, 0); exc != nil {
			b.Fatal(exc)
		}
		if exc := tr.Disarm(0x3000_0000, 0); exc != nil {
			b.Fatal(exc)
		}
	}
}

// BenchmarkTAGE measures branch predictor throughput on a periodic pattern.
func BenchmarkTAGE(b *testing.B) {
	p := bpred.New(bpred.Config{})
	pat := []bool{true, true, false, true, false, false, true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Resolve(0x400000, isa.OpBeq, pat[i%len(pat)], 0x400400, 0x400010)
	}
	b.ReportMetric(100*p.Accuracy(), "accuracy-%")
}

// BenchmarkPipelineThroughput measures raw timing-model speed on a
// synthetic independent-ALU stream.
func BenchmarkPipelineThroughput(b *testing.B) {
	entries := make([]trace.Entry, 100_000)
	for i := range entries {
		entries[i] = trace.Entry{
			PC: 0x400000 + uint64(i%64)*16, Op: isa.OpAddI,
			Dst: uint8(1 + i%16), Src1: isa.NoReg, Src2: isa.NoReg,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h, err := cache.NewHierarchy(cache.DefaultHierConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		p := cpu.New(cpu.DefaultConfig(), h, bpred.New(bpred.Config{}))
		b.StartTimer()
		st := p.Run(trace.NewSliceReader(entries))
		if st.Instructions != 100_000 {
			b.Fatal("short run")
		}
	}
	b.ReportMetric(float64(100_000*b.N)/b.Elapsed().Seconds(), "entries/s")
}

// BenchmarkInOrderVsOoO contrasts the two core models on one workload
// (Figure 3 uses the in-order core; Figures 7/8 the out-of-order core).
func BenchmarkInOrderVsOoO(b *testing.B) {
	wl, _ := workload.ByName("hmmer")
	var inCycles, ooCycles uint64
	for i := 0; i < b.N; i++ {
		run := func(inorder bool) uint64 {
			w, err := world.Build(world.Spec{Pass: prog.Plain(), InOrder: inorder}, wl.Build(1))
			if err != nil {
				b.Fatal(err)
			}
			stats, out := w.RunTimed()
			if out.Err != nil {
				b.Fatal(out.Err)
			}
			return stats.Cycles
		}
		inCycles = run(true)
		ooCycles = run(false)
	}
	b.ReportMetric(float64(inCycles), "inorder-cycles")
	b.ReportMetric(float64(ooCycles), "ooo-cycles")
	b.ReportMetric(float64(inCycles)/float64(ooCycles), "ooo-speedup")
}

// BenchmarkCoherenceTokenMigration measures cross-core token detection: an
// arm on core 0 followed by a faulting access on core 1, through the
// MSI-coherent two-core hierarchy.
func BenchmarkCoherenceTokenMigration(b *testing.B) {
	tok := &benchTokens{masks: map[uint64]uint8{}}
	mh, err := cache.NewMultiHierarchy(2, cache.DefaultHierConfig(), tok)
	if err != nil {
		b.Fatal(err)
	}
	now := uint64(0)
	detected := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := 0x2000_0000 + uint64(i%4096)*64
		mh.Cores[0].L1D.Arm(now, line)
		tok.masks[line&^63] = 1
		now += 50
		if mh.Cores[1].L1D.Load(now, line, 8).TokenHit {
			detected++
		}
		now += 50
		delete(tok.masks, line&^63)
		mh.Cores[1].L1D.Disarm(now, line)
		now += 50
	}
	if detected != b.N {
		b.Fatalf("cross-core detection %d/%d", detected, b.N)
	}
}

type benchTokens struct{ masks map[uint64]uint8 }

func (t *benchTokens) LineTokenMask(lineAddr uint64) uint8 { return t.masks[lineAddr&^63] }
func (t *benchTokens) ChunksPerLine() int                  { return 1 }
