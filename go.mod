module rest

go 1.22
