package rest_test

import (
	"context"
	"strings"
	"testing"

	"rest"
)

func TestRunProgramDetectsOverflow(t *testing.T) {
	overflow := func(b *rest.ProgramBuilder) {
		f := b.Func("main")
		buf := f.Buffer(64, true)
		p := f.Reg()
		v := f.Reg()
		f.MovI(v, 7)
		f.BufAddr(p, buf, 64)
		f.Store(p, 0, v, 8)
	}
	out, err := rest.RunProgram(rest.RESTFull(64), rest.Secure, overflow)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exception == nil {
		t.Fatalf("overflow not detected: %s", out)
	}
	out, err = rest.RunProgram(rest.Plain(), rest.Secure, overflow)
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected() {
		t.Fatalf("plain build detected something: %s", out)
	}
}

func TestRunTimedReturnsStats(t *testing.T) {
	stats, out, err := rest.RunTimed(rest.RESTHeap(64), rest.Secure, func(b *rest.ProgramBuilder) {
		f := b.Func("main")
		p := f.Reg()
		f.CallMallocI(p, 128)
		f.CallFree(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected() {
		t.Fatalf("benign program detected: %s", out)
	}
	if stats.Cycles == 0 || stats.Instructions == 0 {
		t.Error("empty timing stats")
	}
	if stats.IPC <= 0 {
		t.Error("non-positive IPC")
	}
}

func TestWorkloadRegistry(t *testing.T) {
	if len(rest.Workloads()) != 12 {
		t.Errorf("Workloads() = %d entries, want 12", len(rest.Workloads()))
	}
	wl, err := rest.WorkloadByName("gcc")
	if err != nil || wl.Name != "gcc" {
		t.Errorf("WorkloadByName(gcc) = %v, %v", wl.Name, err)
	}
	if len(rest.Attacks()) < 12 {
		t.Errorf("Attacks() = %d entries, want >= 12", len(rest.Attacks()))
	}
}

func TestTableRenderers(t *testing.T) {
	out, ok := rest.TableI()
	if !ok {
		t.Errorf("Table I conformance failed:\n%s", out)
	}
	if !strings.Contains(rest.TableII(), "L1-D") {
		t.Error("Table II missing L1-D row")
	}
	if !strings.Contains(rest.TableIII(), "REST") {
		t.Error("Table III missing REST row")
	}
}

func TestNewSystemExposesInternals(t *testing.T) {
	w, err := rest.NewSystem(rest.RESTFull(32), rest.Debug, func(b *rest.ProgramBuilder) {
		f := b.Func("main")
		p := f.Reg()
		f.CallMallocI(p, 64)
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Tracker == nil {
		t.Fatal("REST system has no tracker")
	}
	if w.Tracker.Register().Width() != rest.Width32 {
		t.Errorf("width = %d, want 32", w.Tracker.Register().Width())
	}
	if w.Tracker.Register().Mode() != rest.Debug {
		t.Errorf("mode = %v, want debug", w.Tracker.Register().Mode())
	}
	out := w.RunFunctional()
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if w.Tracker.Arms == 0 {
		t.Error("allocator armed no redzones")
	}
}

func TestFigure7SubsetThroughFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run")
	}
	m, err := rest.RunFigure7(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	asan := m.WtdAriMeanOverhead("asan")
	secure := m.WtdAriMeanOverhead("secure-full")
	debug := m.WtdAriMeanOverhead("debug-full")
	perfect := m.WtdAriMeanOverhead("perfecthw-full")
	// The paper's headline shape: secure << ASan, debug between secure and
	// a few x secure, perfect ≈ secure.
	if !(secure < asan) {
		t.Errorf("secure (%f) not < asan (%f)", secure, asan)
	}
	if !(secure < debug) {
		t.Errorf("secure (%f) not < debug (%f)", secure, debug)
	}
	if d := perfect - secure; d < -1 || d > 1 {
		t.Errorf("perfecthw-secure gap = %f points, want ~0", d)
	}
	if secure > 15 {
		t.Errorf("secure mean = %f%%, want low (paper: 2%%)", secure)
	}
}
