// Command restattack runs the §V attack suite under every defense
// configuration and prints the detection matrix, including the documented
// false-negative windows (pad spill, jump-over-redzone, post-recycle UAF).
package main

import (
	"flag"
	"fmt"
	"os"

	"rest/internal/attack"
	"rest/internal/core"
	"rest/internal/prog"
	"rest/internal/world"
)

func run(a attack.Attack, pass prog.PassConfig, mode core.Mode) string {
	w, err := world.Build(world.Spec{Pass: pass, Mode: mode}, a.Build)
	if err != nil {
		return "build error"
	}
	out := w.RunFunctional()
	switch {
	case out.Err != nil:
		return "sim error"
	case out.Exception != nil:
		return "REST:" + out.Exception.Kind.String()
	case out.Violation != nil:
		return out.Violation.Tool + ":" + out.Violation.What
	default:
		return "-"
	}
}

func main() {
	modeName := flag.String("mode", "secure", "REST exception mode: secure|debug")
	width := flag.Uint64("width", 64, "token width in bytes")
	flag.Parse()

	mode := core.Secure
	if *modeName == "debug" {
		mode = core.Debug
	}

	configs := []struct {
		name string
		pass prog.PassConfig
	}{
		{"plain", prog.Plain()},
		{"asan", prog.ASanFull()},
		{"rest-full", prog.RESTFull(*width)},
		{"rest-heap", prog.RESTHeap(*width)},
	}

	fmt.Printf("Attack detection matrix (mode=%s, width=%dB). '-' = undetected.\n\n", mode, *width)
	fmt.Printf("%-28s", "attack")
	for _, c := range configs {
		fmt.Printf("%-34s", c.name)
	}
	fmt.Println()

	mismatch := false
	for _, a := range attack.All() {
		fmt.Printf("%-28s", a.Name)
		for _, c := range configs {
			res := run(a, c.pass, mode)
			want := map[string]bool{
				"plain": a.Expected.Plain, "asan": a.Expected.ASan,
				"rest-full": a.Expected.RESTFull, "rest-heap": a.Expected.RESTHeap,
			}[c.name]
			got := res != "-"
			mark := ""
			if got != want {
				mark = " (!)"
				mismatch = true
			}
			fmt.Printf("%-34s", res+mark)
		}
		fmt.Println()
	}
	fmt.Println()
	for _, a := range attack.All() {
		fmt.Printf("%-28s %s\n", a.Name, a.Description)
	}
	if mismatch {
		fmt.Fprintln(os.Stderr, "\ndetection mismatches against expectations (marked with (!))")
		os.Exit(1)
	}
}
