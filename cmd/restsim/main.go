// Command restsim runs one workload under one binary configuration through
// the full functional + timing simulation and prints a statistics report.
//
// Usage:
//
//	restsim -workload xalanc -pass rest-full -mode secure -width 64 -scale 5
//
// Passes: plain, asan, rest-full, rest-heap, perfecthw-full, perfecthw-heap.
package main

import (
	"flag"
	"fmt"
	"os"

	"rest/internal/core"
	"rest/internal/prog"
	"rest/internal/workload"
	"rest/internal/world"
)

func passByName(name string, width uint64) (prog.PassConfig, error) {
	switch name {
	case "plain":
		return prog.Plain(), nil
	case "asan":
		return prog.ASanFull(), nil
	case "rest-full":
		return prog.RESTFull(width), nil
	case "rest-heap":
		return prog.RESTHeap(width), nil
	case "perfecthw-full":
		return prog.PerfectHWFull(), nil
	case "perfecthw-heap":
		return prog.PerfectHWHeap(), nil
	}
	return prog.PassConfig{}, fmt.Errorf("unknown pass %q", name)
}

func main() {
	wlName := flag.String("workload", "xalanc", "workload name (see -list)")
	passName := flag.String("pass", "rest-full", "binary flavour: plain|asan|rest-full|rest-heap|perfecthw-full|perfecthw-heap")
	modeName := flag.String("mode", "secure", "REST exception mode: secure|debug")
	width := flag.Uint64("width", 64, "token width in bytes: 16|32|64")
	scale := flag.Int64("scale", 1, "workload scale factor (~10^5 instructions per unit)")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if *list {
		for _, wl := range workload.All() {
			fmt.Printf("%-12s %s\n", wl.Name, wl.Description)
		}
		return
	}

	wl, err := workload.ByName(*wlName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pass, err := passByName(*passName, *width)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mode := core.Secure
	if *modeName == "debug" {
		mode = core.Debug
	}

	w, err := world.Build(world.Spec{Pass: pass, Mode: mode, Width: core.Width(pass.TokenWidth)}, wl.Build(*scale))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stats, out := w.RunTimed()
	if out.Err != nil {
		fmt.Fprintln(os.Stderr, out.Err)
		os.Exit(1)
	}

	fmt.Printf("workload    %s (%s)\n", wl.Name, wl.Description)
	fmt.Printf("binary      %s, mode=%s, width=%dB\n", *passName, mode, pass.TokenWidth)
	fmt.Printf("outcome     %s (checksum %#x)\n", out, out.Checksum)
	fmt.Printf("cycles      %d\n", stats.Cycles)
	fmt.Printf("instructions %d (user %d + runtime %d), IPC %.2f\n",
		stats.Instructions, stats.UserInstrs, stats.RuntimeOps, stats.IPC)
	fmt.Printf("branches    %d resolved, %d mispredicted (%.2f%%)\n",
		stats.BranchLookups, stats.Mispredicts,
		100*float64(stats.Mispredicts)/float64(max(1, stats.BranchLookups)))
	fmt.Printf("LSQ         %d store->load forwardings\n", stats.LSQForwardings)
	fmt.Printf("ROB blocked by stores: %d cycles\n", stats.ROBStoreBlockCycles)
	l1d := w.Hier.L1D.Stats
	fmt.Printf("L1-D        %d accesses, %d misses (%.2f%%), %d writebacks\n",
		l1d.Accesses, l1d.Misses, 100*float64(l1d.Misses)/float64(max(1, l1d.Accesses)), l1d.Writebacks)
	if w.Tracker != nil {
		fmt.Printf("tokens      %d arms, %d disarms, %d token fills, %d token evictions\n",
			w.Tracker.Arms, w.Tracker.Disarms, l1d.TokenFills, l1d.TokenEvicts)
	}
	a := w.Alloc.Stats()
	fmt.Printf("allocator   %d mallocs, %d frees, %d quarantine pops, peak live %dB\n",
		a.Mallocs, a.Frees, a.QuarantinePops, a.PeakBytesLive)
	if out.Exception != nil {
		fmt.Printf("exception   %v (detection lag %d cycles)\n",
			out.Exception, out.Exception.DetectLagCycles)
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
