// Command restasm assembles and runs a REST assembly file on the simulated
// machine. Write programs using the textual ISA (see internal/asm), plant
// tokens with `arm`, and watch accesses fault:
//
//	restasm program.s                    # run on a REST machine, secure mode
//	restasm -mode debug program.s        # precise exceptions
//	restasm -width 16 program.s          # 16-byte tokens
//	restasm -dump program.s              # print the assembled program only
//
// Runtime services are available via rtcall (1=malloc, 2=free, 3=memcpy,
// 4=memset, 6=exit) with arguments in r20..r22, using the libc allocator.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"rest/internal/alloc"
	"rest/internal/asm"
	"rest/internal/bpred"
	"rest/internal/cache"
	"rest/internal/core"
	"rest/internal/cpu"
	"rest/internal/mem"
	"rest/internal/rt"
	"rest/internal/sim"
)

func main() {
	modeName := flag.String("mode", "secure", "REST exception mode: secure|debug")
	width := flag.Int("width", 64, "token width in bytes: 16|32|64")
	dump := flag.Bool("dump", false, "print the assembled program and exit")
	timed := flag.Bool("timed", true, "run the timing model and report cycles")
	seed := flag.Int64("seed", 1, "token generation seed")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: restasm [flags] program.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, entry, err := asm.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *dump {
		fmt.Print(asm.Format(prog))
		return
	}

	mode := core.Secure
	if *modeName == "debug" {
		mode = core.Debug
	}
	reg, err := core.NewTokenRegister(core.Width(*width), mode, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m := mem.New()
	tracker := core.NewTokenTracker(reg, m)
	engine, err := alloc.NewLibc()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	runtime := rt.New(rt.Plain, engine, nil)
	mach, err := sim.New(sim.Config{Mem: m, Tracker: tracker, Runtime: runtime}, prog, entry)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *timed {
		hier, err := cache.NewHierarchy(cache.DefaultHierConfig(), tracker)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ccfg := cpu.DefaultConfig()
		ccfg.Mode = mode
		pipe := cpu.New(ccfg, hier, bpred.New(bpred.Config{}))
		stats := pipe.Run(mach)
		report(mach, stats.Cycles, stats.Instructions, stats.IPC)
		return
	}
	mach.Run()
	report(mach, 0, mach.UserInstrs+mach.RTOps, 0)
}

func report(mach *sim.Machine, cycles, instrs uint64, ipc float64) {
	switch {
	case mach.Err() != nil:
		fmt.Printf("error: %v\n", mach.Err())
		os.Exit(1)
	case mach.Exception() != nil:
		fmt.Printf("%v\n", mach.Exception())
	case mach.SWViolation() != nil:
		fmt.Printf("violation: %v\n", mach.SWViolation())
	default:
		fmt.Printf("completed; checksum (res) = %#x\n", mach.Checksum())
	}
	if cycles > 0 {
		fmt.Printf("%d instructions, %d cycles, IPC %.2f\n", instrs, cycles, ipc)
	} else {
		fmt.Printf("%d instructions (functional run)\n", instrs)
	}
}
