package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"rest/internal/harness"
	"rest/internal/obs/otlp"
	"rest/internal/workload"
)

func testWorkloads(t *testing.T) []workload.Workload {
	t.Helper()
	var wls []workload.Workload
	for _, name := range []string{"lbm", "xalanc"} {
		wl, err := workload.ByName(name)
		if err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		wls = append(wls, wl)
	}
	return wls
}

// renderSweep runs the fig8sens grid once and returns every byte a report
// consumer sees: the rendered table, the CSV matrix, and the metrics
// report's CSV and JSON.
func renderSweep(t *testing.T, j int, onCell func(harness.CellEvent)) (table, csv, mcsv, mjson string) {
	t.Helper()
	wls := testWorkloads(t)
	m, err := harness.RunMatrixParallel(context.Background(), wls, harness.Fig8SensitivityConfigs(), 1,
		harness.ParallelOptions{Workers: j, Metrics: true, OnCell: onCell})
	if err != nil {
		t.Fatalf("sweep (j=%d): %v", j, err)
	}
	rep := m.Metrics("fig8sens")
	if rep == nil {
		t.Fatal("no metrics report")
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return m.RenderOverheadTable("sensitivity"), m.CSV(), rep.CSV(), js
}

// The exporter differential: every report byte must be identical with no
// telemetry, with an active draining subscriber, and with a deliberately
// stalled subscriber that forces the bus onto its drop path — at j=1 and
// j=4. This is the tentpole's half of the determinism contract.
func TestReportsByteIdenticalUnderTelemetry(t *testing.T) {
	t.Parallel()
	for _, j := range []int{1, 4} {
		j := j
		t.Run(fmt.Sprintf("j=%d", j), func(t *testing.T) {
			t.Parallel()
			bt, bc, bmc, bmj := renderSweep(t, j, nil) // bare reference

			// Active subscriber draining concurrently.
			telA := harness.NewTelemetryExporter("restbench", nil)
			subA := telA.Bus.Subscribe(0)
			done := make(chan int)
			go func() {
				n := 0
				for range subA.C() {
					n++
				}
				done <- n
			}()
			at, ac, amc, amj := renderSweep(t, j, telA.OnCell("fig8sens"))
			telA.Bus.Unsubscribe(subA)
			if n := <-done; n == 0 {
				t.Error("active subscriber saw no lines")
			}

			// Stalled subscriber: buffer of 1, never read. The bus must drop
			// lines rather than stall the sweep.
			telS := harness.NewTelemetryExporter("restbench", nil)
			telS.Bus.Subscribe(1)
			st, sc, smc, smj := renderSweep(t, j, telS.OnCell("fig8sens"))
			if _, dropped := telS.Bus.Counters(); dropped == 0 {
				t.Error("stalled subscriber never forced a drop")
			}

			for name, pair := range map[string][2]string{
				"table/active":        {bt, at},
				"csv/active":          {bc, ac},
				"metrics-csv/active":  {bmc, amc},
				"metrics-json/active": {bmj, amj},
				"table/stalled":       {bt, st},
				"csv/stalled":         {bc, sc},
				"metrics-csv/stalled": {bmc, smc},
				"metrics-json/stall":  {bmj, smj},
			} {
				if pair[0] != pair[1] {
					t.Errorf("%s: output diverged under telemetry:\n--- bare ---\n%.1500s\n--- observed ---\n%.1500s",
						name, pair[0], pair[1])
				}
			}
		})
	}
}

// End-to-end over real HTTP: a sweep with -serve semantics exposes a valid
// snapshot and a stream carrying both document kinds.
func TestServeEndToEnd(t *testing.T) {
	t.Parallel()
	tel := harness.NewTelemetryExporter("restbench", nil)
	addr, err := startTelemetryServer("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}

	// Attach a streaming client before the sweep so it sees the span lines.
	resp, err := http.Get("http://" + addr + "/otlp/stream?interval=100ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := make(chan string, 1024)
	go func() {
		r := bufio.NewReader(resp.Body)
		for {
			line, err := r.ReadString('\n')
			if s := strings.TrimSpace(line); s != "" {
				lines <- s
			}
			if err != nil {
				close(lines)
				return
			}
		}
	}()

	wls := testWorkloads(t)
	cfgs := harness.Fig8SensitivityConfigs()
	tel.AddSweep("fig8sens", len(wls)*len(cfgs))
	if _, err := harness.RunMatrixParallel(context.Background(), wls, cfgs, 1,
		harness.ParallelOptions{Workers: 4, OnCell: tel.OnCell("fig8sens")}); err != nil {
		t.Fatalf("sweep: %v", err)
	}

	// Snapshot endpoint: valid document reflecting the finished sweep.
	mresp, err := http.Get("http://" + addr + "/otlp/metrics")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n, err := otlp.ValidateDump(snap); err != nil || n != 1 {
		t.Fatalf("/otlp/metrics invalid: n=%d err=%v\n%.2000s", n, err, snap)
	}
	want := fmt.Sprintf(`"asInt": "%d"`, len(wls)*len(cfgs)) // MarshalIndent spacing
	if s := string(snap); !strings.Contains(s, "rest.sweep.live.cells_done") || !strings.Contains(s, want) {
		t.Errorf("snapshot missing live progress gauges:\n%.2000s", s)
	}

	// Stream: every line validates; both kinds arrived.
	var spans, metrics int
	deadline := time.After(10 * time.Second)
collect:
	for spans < len(wls)*len(cfgs) || metrics == 0 {
		select {
		case line, ok := <-lines:
			if !ok {
				break collect
			}
			if err := otlp.ValidateLine([]byte(line)); err != nil {
				t.Fatalf("stream line invalid: %v\n%s", err, line)
			}
			if strings.Contains(line, "resourceSpans") {
				spans++
			} else {
				metrics++
			}
		case <-deadline:
			break collect
		}
	}
	if spans != len(wls)*len(cfgs) {
		t.Errorf("stream carried %d span lines, want %d", spans, len(wls)*len(cfgs))
	}
	if metrics == 0 {
		t.Errorf("stream carried no metrics snapshots")
	}
}
