// restbench -watch ADDR: a zero-touch terminal dashboard for a running
// sweep. It attaches to another restbench process's /otlp/stream feed and
// renders live progress entirely from the exported documents — per-worker
// activity from the span stream, cache hit rates and fault-plane counters
// from the metric snapshots — without the observed process knowing or
// caring. Detaching (ctrl-C) or the sweep finishing leaves the observed run
// untouched; the telemetry differential tests pin that its reports stay
// byte-identical either way.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// workerView is the last observed activity of one sweep worker.
type workerView struct {
	Cells   int    // spans seen for this worker
	Last    string // "workload/config" of the most recent span
	Verdict string
	Source  string
	Cycles  uint64
}

// watchState is the dashboard model: everything it knows comes from
// ingesting stream lines, so it can be driven (and tested) without a
// network. Not safe for concurrent use; the watch loop is single-threaded.
type watchState struct {
	Service string
	Version string

	// vals holds every integer metric from the latest snapshot, keyed by
	// semantic name (rest.sweep.live.cells_done, rest.cache.trace.hits, ...).
	vals map[string]uint64

	workers  map[int]*workerView
	verdicts map[string]int // ok / hole / skipped tallies from spans
	sweep    string         // most recent rest.sweep attribute
	spans    int
	started  time.Time // first ingest, for the ETA estimate
	lastErr  string    // most recent hole's status message
}

func newWatchState() *watchState {
	return &watchState{
		vals:     make(map[string]uint64),
		workers:  make(map[int]*workerView),
		verdicts: make(map[string]int),
	}
}

// streamDoc is the decode target for one stream line: exactly one of the two
// top-level keys is present. The field shapes mirror internal/obs/otlp; they
// are re-declared here because the watcher is a wire-format client — it must
// read what is actually on the wire, not share structs with the encoder.
type streamDoc struct {
	ResourceMetrics []struct {
		Resource struct {
			Attributes []watchAttr `json:"attributes"`
		} `json:"resource"`
		ScopeMetrics []struct {
			Metrics []struct {
				Name  string          `json:"name"`
				Sum   *watchNumPoints `json:"sum"`
				Gauge *watchNumPoints `json:"gauge"`
			} `json:"metrics"`
		} `json:"scopeMetrics"`
	} `json:"resourceMetrics"`
	ResourceSpans []struct {
		ScopeSpans []struct {
			Spans []struct {
				Name       string      `json:"name"`
				Attributes []watchAttr `json:"attributes"`
				Status     *struct {
					Code    int    `json:"code"`
					Message string `json:"message"`
				} `json:"status"`
			} `json:"spans"`
		} `json:"scopeSpans"`
	} `json:"resourceSpans"`
}

type watchAttr struct {
	Key   string `json:"key"`
	Value struct {
		StringValue *string `json:"stringValue"`
		IntValue    *string `json:"intValue"`
	} `json:"value"`
}

type watchNumPoints struct {
	DataPoints []struct {
		AsInt string `json:"asInt"`
	} `json:"dataPoints"`
}

func (p *watchNumPoints) value() (uint64, bool) {
	if p == nil || len(p.DataPoints) == 0 {
		return 0, false
	}
	v, err := strconv.ParseUint(p.DataPoints[len(p.DataPoints)-1].AsInt, 10, 64)
	return v, err == nil
}

func attrMap(attrs []watchAttr) (str map[string]string, num map[string]uint64) {
	str, num = make(map[string]string), make(map[string]uint64)
	for _, a := range attrs {
		if a.Value.StringValue != nil {
			str[a.Key] = *a.Value.StringValue
		}
		if a.Value.IntValue != nil {
			if v, err := strconv.ParseUint(*a.Value.IntValue, 10, 64); err == nil {
				num[a.Key] = v
			}
		}
	}
	return str, num
}

// ingest folds one stream line into the model. Unknown shapes are ignored
// (forward compatibility beats strictness in a viewer); a line that is not
// JSON at all is an error so the caller can report a broken feed.
func (w *watchState) ingest(line []byte) error {
	line = []byte(strings.TrimSpace(string(line)))
	if len(line) == 0 {
		return nil
	}
	var doc streamDoc
	if err := json.Unmarshal(line, &doc); err != nil {
		return fmt.Errorf("watch: bad stream line: %w", err)
	}
	for _, rm := range doc.ResourceMetrics {
		str, _ := attrMap(rm.Resource.Attributes)
		if s := str["service.name"]; s != "" {
			w.Service = s
		}
		if v := str["service.version"]; v != "" {
			w.Version = v
		}
		for _, sm := range rm.ScopeMetrics {
			for _, m := range sm.Metrics {
				if v, ok := m.Gauge.value(); ok {
					w.vals[m.Name] = v
				} else if v, ok := m.Sum.value(); ok {
					w.vals[m.Name] = v
				}
			}
		}
	}
	for _, rs := range doc.ResourceSpans {
		for _, ss := range rs.ScopeSpans {
			for _, sp := range ss.Spans {
				str, num := attrMap(sp.Attributes)
				w.spans++
				if s := str["rest.sweep"]; s != "" {
					w.sweep = s
				}
				verdict := str["rest.cell.verdict"]
				if verdict == "" {
					verdict = "ok"
				}
				w.verdicts[verdict]++
				if verdict == "hole" && sp.Status != nil {
					w.lastErr = sp.Status.Message
				}
				id := int(num["rest.cell.worker"])
				wv := w.workers[id]
				if wv == nil {
					wv = &workerView{}
					w.workers[id] = wv
				}
				wv.Cells++
				wv.Last = str["rest.cell.workload"] + "/" + str["rest.cell.config"]
				wv.Verdict = verdict
				wv.Source = str["rest.cell.source"]
				wv.Cycles = num["rest.cell.cycles"]
			}
		}
	}
	return nil
}

// rate renders "h/(h+m)" as a percentage, or "-" before any lookups.
func rate(hits, misses uint64) string {
	if hits+misses == 0 {
		return "-"
	}
	return fmt.Sprintf("%d%% (%d/%d)", hits*100/(hits+misses), hits, hits+misses)
}

// render draws the dashboard frame. now feeds the ETA; injected for tests.
func (w *watchState) render(now time.Time) string {
	var b strings.Builder
	v := w.vals
	total := v["rest.sweep.live.cells_total"]
	done := v["rest.sweep.live.cells_done"]
	holes := v["rest.sweep.live.cells_holes"]

	title := "restbench watch"
	if w.Service != "" {
		title += " — " + w.Service
		if w.Version != "" {
			title += " (" + w.Version + ")"
		}
	}
	if w.sweep != "" {
		title += " — sweep " + w.sweep
	}
	fmt.Fprintln(&b, title)

	// Progress bar + ETA from the live gauges.
	pct := uint64(0)
	if total > 0 {
		pct = done * 100 / total
	}
	const width = 40
	fill := 0
	if total > 0 {
		fill = int(done * width / total)
		if fill > width {
			fill = width
		}
	}
	bar := strings.Repeat("#", fill) + strings.Repeat(".", width-fill)
	eta := "-"
	if !w.started.IsZero() && done > 0 && total > done {
		per := now.Sub(w.started) / time.Duration(done)
		eta = (per * time.Duration(total-done)).Round(time.Second).String()
	}
	fmt.Fprintf(&b, "  [%s] %d/%d cells (%d%%), %d holes, eta %s\n",
		bar, done, total, pct, holes, eta)

	fmt.Fprintf(&b, "  caches: trace %s  disk-result %s  disk-trace %s  blocks %s\n",
		rate(v["rest.cache.trace.hits"], v["rest.cache.trace.misses"]),
		rate(v["rest.cache.disk.result_hits"], v["rest.cache.disk.result_misses"]),
		rate(v["rest.cache.disk.trace_hits"], v["rest.cache.disk.trace_misses"]),
		rate(v["rest.sim.blockcache.hits"], v["rest.sim.blockcache.misses"]))

	if n := v["rest.persist.retry.attempts"]; n > 0 {
		fmt.Fprintf(&b, "  persist: %d attempts, %d retries, %d giveups | breaker: %d trips, %d rejects | chaos: %d faults\n",
			n, v["rest.persist.retry.retries"], v["rest.persist.retry.giveups"],
			v["rest.persist.breaker.trips"], v["rest.persist.breaker.rejects"],
			v["rest.persist.chaos.errs"]+v["rest.persist.chaos.torn"]+
				v["rest.persist.chaos.corrupt"]+v["rest.persist.chaos.nospace"])
	}

	fmt.Fprintf(&b, "  stream: %d spans seen (ok %d, hole %d, skipped %d); exporter published %d, dropped %d\n",
		w.spans, w.verdicts["ok"], w.verdicts["hole"], w.verdicts["skipped"],
		v["rest.sweep.live.stream_published"], v["rest.sweep.live.stream_dropped"])
	if w.lastErr != "" {
		fmt.Fprintf(&b, "  last hole: %s\n", w.lastErr)
	}

	if len(w.workers) > 0 {
		ids := make([]int, 0, len(w.workers))
		for id := range w.workers {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		fmt.Fprintln(&b, "  workers:")
		for _, id := range ids {
			wv := w.workers[id]
			src := wv.Source
			if src == "" {
				src = "-"
			}
			fmt.Fprintf(&b, "    w%-2d %4d cells  last %-28s %-7s via %-12s %12d cycles\n",
				id, wv.Cells, wv.Last, wv.Verdict, src, wv.Cycles)
		}
	}
	return b.String()
}

// ansiHome clears the terminal and homes the cursor between frames.
const ansiHome = "\033[H\033[2J"

// runWatch attaches to addr's /otlp/stream and redraws the dashboard on
// every line until the stream closes (sweep process exited) or the reader
// fails. It returns nil on a clean close — the expected way a watch ends.
func runWatch(addr string, out io.Writer) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	url := strings.TrimSuffix(addr, "/") + "/otlp/stream"
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("restbench: -watch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("restbench: -watch %s: HTTP %s", url, resp.Status)
	}

	st := newWatchState()
	st.started = time.Now()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lastDraw := time.Time{}
	for sc.Scan() {
		if err := st.ingest(sc.Bytes()); err != nil {
			fmt.Fprintf(out, "%v\n", err)
			continue
		}
		// Redraw at most ~20 Hz: span bursts from a -j N sweep would
		// otherwise spend more time painting than reading.
		if now := time.Now(); now.Sub(lastDraw) >= 50*time.Millisecond {
			fmt.Fprint(out, ansiHome+st.render(now))
			lastDraw = now
		}
	}
	fmt.Fprint(out, ansiHome+st.render(time.Now()))
	if err := sc.Err(); err != nil && !streamClosed(err) {
		return fmt.Errorf("restbench: -watch: stream read: %w", err)
	}
	fmt.Fprintln(out, "stream closed — sweep finished (or server exited)")
	return nil
}

// streamClosed reports whether a stream read error is the observed process
// going away — the normal end of a watch, not a failure. The server does not
// gracefully terminate the chunked response when its sweep finishes and the
// process exits, so the reader sees an unexpected EOF or a reset rather
// than a clean io.EOF.
func streamClosed(err error) bool {
	if err == nil || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	s := err.Error()
	return strings.Contains(s, "connection reset") || strings.Contains(s, "broken pipe")
}
