package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateCacheFlags pins every up-front rejection of a nonsensical
// persistent-cache flag combination (each must fail with a one-line error
// before any sweep work starts) and the mode each valid combination
// resolves to.
func TestValidateCacheFlags(t *testing.T) {
	dir := t.TempDir()
	for _, tt := range []struct {
		name      string
		s         cacheFlagState
		mode      string
		wantChaos bool
		wantShard   string // Shard.String() of the parsed slice ("" = full grid)
		wantElastic bool   // -shard auto resolved to the work-stealing pool
		wantErr     string
	}{
		{name: "no cache flags", s: cacheFlagState{TraceCache: true}, mode: "rw"},
		{name: "dir alone defaults to rw", s: cacheFlagState{Dir: dir, TraceCache: true}, mode: "rw"},
		{name: "explicit rw", s: cacheFlagState{Dir: dir, RW: true, TraceCache: true}, mode: "rw"},
		{name: "explicit ro", s: cacheFlagState{Dir: dir, RO: true, TraceCache: true}, mode: "ro"},
		{name: "explicit off", s: cacheFlagState{Dir: dir, Off: true, TraceCache: true}, mode: "off"},
		{name: "off without trace cache is fine", s: cacheFlagState{Dir: dir, Off: true}, mode: "off"},
		{
			name:    "rw and ro together",
			s:       cacheFlagState{Dir: dir, RW: true, RO: true, TraceCache: true},
			wantErr: "mutually exclusive",
		},
		{
			name:    "ro and off together",
			s:       cacheFlagState{Dir: dir, RO: true, Off: true, TraceCache: true},
			wantErr: "mutually exclusive",
		},
		{
			name:    "mode flag without a dir",
			s:       cacheFlagState{RW: true, TraceCache: true},
			wantErr: "pass -cache-dir DIR",
		},
		{
			name:    "max-bytes without a dir",
			s:       cacheFlagState{MaxBytes: 1 << 20, MaxBytesSet: true, TraceCache: true},
			wantErr: "pass -cache-dir DIR",
		},
		{
			name:    "non-positive max-bytes",
			s:       cacheFlagState{Dir: dir, MaxBytes: -5, MaxBytesSet: true, TraceCache: true},
			wantErr: "must be positive",
		},
		{
			name:    "cache without the trace cache",
			s:       cacheFlagState{Dir: dir, TraceCache: false},
			wantErr: "rides on the trace cache",
		},
		{
			name:    "read-only over a missing dir",
			s:       cacheFlagState{Dir: dir + "/missing", RO: true, TraceCache: true},
			wantErr: "does not exist",
		},
		{
			name:      "chaos spec parses",
			s:         cacheFlagState{Dir: dir, Chaos: "seed=7,rate=0.5", TraceCache: true},
			mode:      "rw",
			wantChaos: true,
		},
		{
			name:      "chaos with read-only mode",
			s:         cacheFlagState{Dir: dir, RO: true, Chaos: "err=0.1", TraceCache: true},
			mode:      "ro",
			wantChaos: true,
		},
		{
			name:    "chaos without a dir",
			s:       cacheFlagState{Chaos: "rate=1", TraceCache: true},
			wantErr: "pass -cache-dir DIR",
		},
		{
			name:    "chaos with cache off",
			s:       cacheFlagState{Dir: dir, Off: true, Chaos: "rate=1", TraceCache: true},
			wantErr: "no effect with -cache-off",
		},
		{
			name:    "malformed chaos spec",
			s:       cacheFlagState{Dir: dir, Chaos: "rate=2.0", TraceCache: true},
			wantErr: "probability in [0,1]",
		},
		{
			name:    "unknown chaos key",
			s:       cacheFlagState{Dir: dir, Chaos: "bogus=1", TraceCache: true},
			wantErr: "unknown",
		},
		{
			name:    "retries without a dir",
			s:       cacheFlagState{Retries: 5, RetriesSet: true, TraceCache: true},
			wantErr: "pass -cache-dir DIR",
		},
		{
			name:    "negative retries",
			s:       cacheFlagState{Dir: dir, Retries: -1, RetriesSet: true, TraceCache: true},
			wantErr: "must be >= 0",
		},
		{
			name:    "retries with cache off",
			s:       cacheFlagState{Dir: dir, Off: true, Retries: 3, RetriesSet: true, TraceCache: true},
			wantErr: "no effect with -cache-off",
		},
		{
			name:    "timeout without a dir",
			s:       cacheFlagState{Timeout: time.Second, TimeoutSet: true, TraceCache: true},
			wantErr: "pass -cache-dir DIR",
		},
		{
			name:    "non-positive timeout",
			s:       cacheFlagState{Dir: dir, Timeout: -time.Second, TimeoutSet: true, TraceCache: true},
			wantErr: "must be positive",
		},
		{
			name: "retries and timeout with a dir",
			s: cacheFlagState{
				Dir: dir, Retries: 3, RetriesSet: true,
				Timeout: time.Second, TimeoutSet: true, TraceCache: true,
			},
			mode: "rw",
		},
		{name: "url alone defaults to rw", s: cacheFlagState{URL: "http://localhost:9", TraceCache: true}, mode: "rw"},
		{
			name: "url carries the hardening stack",
			s: cacheFlagState{
				URL: "http://localhost:9", Chaos: "seed=3,rate=0.2",
				Retries: 4, RetriesSet: true, TraceCache: true,
			},
			mode:      "rw",
			wantChaos: true,
		},
		{
			name: "url in read-only mode skips the dir check",
			s:    cacheFlagState{URL: "http://localhost:9", RO: true, TraceCache: true},
			mode: "ro",
		},
		{
			name:    "dir and url together",
			s:       cacheFlagState{Dir: dir, URL: "http://localhost:9", TraceCache: true},
			wantErr: "not both",
		},
		{
			name:    "url without the trace cache",
			s:       cacheFlagState{URL: "http://localhost:9", TraceCache: false},
			wantErr: "rides on the trace cache",
		},
		{
			name:      "shard over a dir store",
			s:         cacheFlagState{Dir: dir, Shard: "2/4", TraceCache: true},
			mode:      "rw",
			wantShard: "2/4",
		},
		{
			name:      "shard over a url store",
			s:         cacheFlagState{URL: "http://localhost:9", Shard: "1/2", TraceCache: true},
			mode:      "rw",
			wantShard: "1/2",
		},
		{
			name:    "shard without a store",
			s:       cacheFlagState{Shard: "1/2", TraceCache: true},
			wantErr: "read-write mode",
		},
		{
			name:    "shard over a read-only store",
			s:       cacheFlagState{Dir: dir, RO: true, Shard: "1/2", TraceCache: true},
			wantErr: "read-write mode",
		},
		{
			name:    "shard with merge",
			s:       cacheFlagState{Dir: dir, Shard: "1/2", Merge: true, TraceCache: true},
			wantErr: "pass one, not both",
		},
		{
			name:    "malformed shard spec",
			s:       cacheFlagState{Dir: dir, Shard: "0/2", TraceCache: true},
			wantErr: "-shard",
		},
		{
			name:        "shard auto over a url store",
			s:           cacheFlagState{URL: "http://localhost:9", Shard: "auto", TraceCache: true},
			mode:        "rw",
			wantElastic: true,
		},
		{
			name:        "shard auto over a dir store",
			s:           cacheFlagState{Dir: dir, Shard: "auto", TraceCache: true},
			mode:        "rw",
			wantElastic: true,
		},
		{
			name:    "shard auto without a store",
			s:       cacheFlagState{Shard: "auto", TraceCache: true},
			wantErr: "read-write mode",
		},
		{
			name:    "shard auto over a read-only store",
			s:       cacheFlagState{Dir: dir, RO: true, Shard: "auto", TraceCache: true},
			wantErr: "read-write mode",
		},
		{
			name:    "shard auto with merge",
			s:       cacheFlagState{Dir: dir, Shard: "auto", Merge: true, TraceCache: true},
			wantErr: "pass one, not both",
		},
		{
			name:    "stale age without a store",
			s:       cacheFlagState{StaleAge: time.Second, StaleAgeSet: true, TraceCache: true},
			wantErr: "pass -cache-dir DIR",
		},
		{
			name:    "non-positive stale age",
			s:       cacheFlagState{Dir: dir, StaleAge: -time.Second, StaleAgeSet: true, TraceCache: true},
			wantErr: "must be positive",
		},
		{
			name:    "stale age with cache off",
			s:       cacheFlagState{Dir: dir, Off: true, StaleAge: time.Second, StaleAgeSet: true, TraceCache: true},
			wantErr: "no effect with -cache-off",
		},
		{
			name: "stale age with an elastic worker",
			s: cacheFlagState{
				URL: "http://localhost:9", Shard: "auto",
				StaleAge: 5 * time.Second, StaleAgeSet: true, TraceCache: true,
			},
			mode:        "rw",
			wantElastic: true,
		},
		{name: "merge over a dir store", s: cacheFlagState{Dir: dir, Merge: true, TraceCache: true}, mode: "rw"},
		{
			name: "merge over a read-only url store",
			s:    cacheFlagState{URL: "http://localhost:9", RO: true, Merge: true, TraceCache: true},
			mode: "ro",
		},
		{
			name:    "merge without a store",
			s:       cacheFlagState{Merge: true, TraceCache: true},
			wantErr: "-merge assembles",
		},
	} {
		t.Run(tt.name, func(t *testing.T) {
			setup, err := validateCacheFlags(tt.s)
			if tt.wantErr != "" {
				if err == nil {
					t.Fatalf("want error containing %q, got %+v", tt.wantErr, setup)
				}
				if !strings.Contains(err.Error(), tt.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tt.wantErr)
				}
				if strings.ContainsRune(err.Error(), '\n') {
					t.Fatalf("error is not one line: %q", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if setup.Mode != tt.mode {
				t.Fatalf("mode: want %q got %q", tt.mode, setup.Mode)
			}
			if (setup.Chaos != nil) != tt.wantChaos {
				t.Fatalf("chaos spec: want present=%t got %v", tt.wantChaos, setup.Chaos)
			}
			if setup.Shard.String() != tt.wantShard {
				t.Fatalf("shard: want %q got %q", tt.wantShard, setup.Shard)
			}
			if setup.Elastic != tt.wantElastic {
				t.Fatalf("elastic: want %t got %t", tt.wantElastic, setup.Elastic)
			}
		})
	}
}

// TestValidateCacheServeFlags pins -cache-serve's contract: it turns the
// process into a cache server, needs the directory to serve, and takes no
// flag that would configure a local run.
func TestValidateCacheServeFlags(t *testing.T) {
	cases := []struct {
		name     string
		explicit map[string]bool
		wantErr  string
	}{
		{name: "no cache-serve", explicit: map[string]bool{"fig3": true, "cache-dir": true}},
		{name: "serve with its dir", explicit: map[string]bool{"cache-serve": true, "cache-dir": true}},
		{
			name:     "serve without a dir",
			explicit: map[string]bool{"cache-serve": true},
			wantErr:  "needs -cache-dir",
		},
		{
			name:     "serve with an experiment",
			explicit: map[string]bool{"cache-serve": true, "cache-dir": true, "fig8": true},
			wantErr:  "-fig8",
		},
		{
			name:     "serve with shard and jobs",
			explicit: map[string]bool{"cache-serve": true, "cache-dir": true, "shard": true, "j": true},
			wantErr:  "-j, -shard",
		},
	}
	for _, tt := range cases {
		err := validateCacheServeFlags(tt.explicit)
		if tt.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tt.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
			t.Errorf("%s: got %v, want error containing %q", tt.name, err, tt.wantErr)
		}
	}
}

// TestValidateWatchFlags pins -watch's exclusivity: it attaches to another
// process, so any local-run flag alongside it is rejected up front.
func TestValidateWatchFlags(t *testing.T) {
	cases := []struct {
		name     string
		explicit map[string]bool
		wantErr  string
	}{
		{name: "no watch", explicit: map[string]bool{"fig7": true, "j": true}},
		{name: "watch alone", explicit: map[string]bool{"watch": true}},
		{
			name:     "watch with experiment",
			explicit: map[string]bool{"watch": true, "fig8": true},
			wantErr:  "-fig8",
		},
		{
			name:     "watch with serve and jobs",
			explicit: map[string]bool{"watch": true, "serve": true, "j": true},
			wantErr:  "-j, -serve",
		},
	}
	for _, tt := range cases {
		err := validateWatchFlags(tt.explicit)
		if tt.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tt.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
			t.Errorf("%s: got %v, want error containing %q", tt.name, err, tt.wantErr)
		}
	}
}
