package main

import (
	"strings"
	"testing"
)

// TestValidateCacheFlags pins every up-front rejection of a nonsensical
// persistent-cache flag combination (each must fail with a one-line error
// before any sweep work starts) and the mode each valid combination
// resolves to.
func TestValidateCacheFlags(t *testing.T) {
	dir := t.TempDir()
	for _, tt := range []struct {
		name    string
		s       cacheFlagState
		mode    string
		wantErr string
	}{
		{name: "no cache flags", s: cacheFlagState{TraceCache: true}, mode: "rw"},
		{name: "dir alone defaults to rw", s: cacheFlagState{Dir: dir, TraceCache: true}, mode: "rw"},
		{name: "explicit rw", s: cacheFlagState{Dir: dir, RW: true, TraceCache: true}, mode: "rw"},
		{name: "explicit ro", s: cacheFlagState{Dir: dir, RO: true, TraceCache: true}, mode: "ro"},
		{name: "explicit off", s: cacheFlagState{Dir: dir, Off: true, TraceCache: true}, mode: "off"},
		{name: "off without trace cache is fine", s: cacheFlagState{Dir: dir, Off: true}, mode: "off"},
		{
			name:    "rw and ro together",
			s:       cacheFlagState{Dir: dir, RW: true, RO: true, TraceCache: true},
			wantErr: "mutually exclusive",
		},
		{
			name:    "ro and off together",
			s:       cacheFlagState{Dir: dir, RO: true, Off: true, TraceCache: true},
			wantErr: "mutually exclusive",
		},
		{
			name:    "mode flag without a dir",
			s:       cacheFlagState{RW: true, TraceCache: true},
			wantErr: "pass -cache-dir DIR",
		},
		{
			name:    "max-bytes without a dir",
			s:       cacheFlagState{MaxBytes: 1 << 20, MaxBytesSet: true, TraceCache: true},
			wantErr: "pass -cache-dir DIR",
		},
		{
			name:    "non-positive max-bytes",
			s:       cacheFlagState{Dir: dir, MaxBytes: -5, MaxBytesSet: true, TraceCache: true},
			wantErr: "must be positive",
		},
		{
			name:    "cache without the trace cache",
			s:       cacheFlagState{Dir: dir, TraceCache: false},
			wantErr: "rides on the trace cache",
		},
		{
			name:    "read-only over a missing dir",
			s:       cacheFlagState{Dir: dir + "/missing", RO: true, TraceCache: true},
			wantErr: "does not exist",
		},
	} {
		t.Run(tt.name, func(t *testing.T) {
			mode, err := validateCacheFlags(tt.s)
			if tt.wantErr != "" {
				if err == nil {
					t.Fatalf("want error containing %q, got mode %q", tt.wantErr, mode)
				}
				if !strings.Contains(err.Error(), tt.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tt.wantErr)
				}
				if strings.ContainsRune(err.Error(), '\n') {
					t.Fatalf("error is not one line: %q", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if mode != tt.mode {
				t.Fatalf("mode: want %q got %q", tt.mode, mode)
			}
		})
	}
}
