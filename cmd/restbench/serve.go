// The -serve surface: restbench's OTLP-compatible telemetry endpoints.
// Everything here is read-only with respect to the sweep and writes only to
// the HTTP connection (plus one stderr banner), so serving telemetry cannot
// perturb the reports — the telemetry differential tests pin that.
package main

import (
	"fmt"
	"net"
	"net/http"
	"os"

	"rest/internal/harness"
)

// startTelemetryServer binds addr and serves the exporter's OTLP endpoints
// on a dedicated mux (plus /debug/vars via the caller's expvar publication
// when -pprof shares the process). It returns the resolved address, so
// callers can print a usable URL even for ":0" specs.
func startTelemetryServer(addr string, tel *harness.TelemetryExporter) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("restbench: -serve %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	tel.Source().Register(mux)
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		}
	}()
	return ln.Addr().String(), nil
}
