package main

import (
	"strings"
	"testing"
	"time"

	"rest/internal/obs"
	"rest/internal/obs/otlp"
)

var (
	w0 = time.Unix(1700000000, 0).UTC()
	w1 = time.Unix(1700000010, 0).UTC()
)

func watchMetricsLine(t *testing.T, fill func(*obs.Registry)) []byte {
	t.Helper()
	r := obs.NewRegistry()
	fill(r)
	return otlp.Line(otlp.EncodeMetrics(r.Snapshot(), otlp.ServiceResource("restbench"), w0, w1))
}

func watchSpanLine(t *testing.T, cells ...otlp.CellSpan) []byte {
	t.Helper()
	return otlp.Line(otlp.EncodeSpans(cells, otlp.ServiceResource("restbench")))
}

// The dashboard model ingests exactly what the wire carries and renders the
// operator's view: progress, cache rates, verdicts, per-worker activity.
func TestWatchStateIngestAndRender(t *testing.T) {
	st := newWatchState()
	st.started = w0

	if err := st.ingest(watchMetricsLine(t, func(r *obs.Registry) {
		r.Gauge("harness.live.cells_total").Set(8)
		r.Gauge("harness.live.cells_done").Set(4)
		r.Gauge("harness.live.cells_holes").Set(1)
		r.Counter("harness.live.stream_published").Add(4)
		r.Counter("harness.trace_cache.hits").Add(3)
		r.Counter("harness.trace_cache.misses").Add(1)
		r.Counter("harness.diskcache.result_hits").Add(2)
		r.Counter("harness.diskcache.result_misses").Add(2)
		r.Counter("persist.retry.attempts").Add(10)
		r.Counter("persist.retry.retries").Add(2)
		r.Counter("persist.breaker.trips").Add(1)
		r.Counter("persist.chaos.errs").Add(5)
	})); err != nil {
		t.Fatal(err)
	}
	if err := st.ingest(watchSpanLine(t,
		otlp.CellSpan{Sweep: "fig8sens", Worker: 0, Index: 0, Total: 8, Workload: "lbm",
			Config: "baseline", Start: w0, End: w1, Verdict: "ok", Source: "capture", Cycles: 1000},
		otlp.CellSpan{Sweep: "fig8sens", Worker: 1, Index: 1, Total: 8, Workload: "xalanc",
			Config: "l2slow", Start: w0, End: w1, Verdict: "hole", Reason: "cell timeout"},
	)); err != nil {
		t.Fatal(err)
	}

	out := st.render(w0.Add(20 * time.Second))
	for _, want := range []string{
		"restbench",                  // service name from the resource
		"sweep fig8sens",             // sweep from span attrs
		"4/8 cells (50%), 1 holes",   // live gauges
		"eta 20s",                    // 4 done in 20s -> 4 left in 20s
		"trace 75% (3/4)",            // trace cache rate
		"disk-result 50% (2/4)",      // disk result rate
		"10 attempts, 2 retries",     // persist plane
		"1 trips",                    // breaker
		"5 faults",                   // chaos total
		"2 spans seen (ok 1, hole 1", // verdict tally
		"last hole: hole: cell timeout",
		"w0", "lbm/baseline", "via capture",
		"w1", "xalanc/l2slow", "via -", // failed cell has no source
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
}

func TestWatchStateUpdatesAcrossSnapshots(t *testing.T) {
	st := newWatchState()
	for done := uint64(1); done <= 3; done++ {
		done := done
		if err := st.ingest(watchMetricsLine(t, func(r *obs.Registry) {
			r.Gauge("harness.live.cells_total").Set(3)
			r.Gauge("harness.live.cells_done").Set(done)
		})); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.render(w1); !strings.Contains(got, "3/3 cells (100%)") {
		t.Errorf("later snapshots must supersede earlier ones:\n%s", got)
	}
	// Same worker across spans: the row accumulates rather than duplicates.
	for i := 0; i < 3; i++ {
		if err := st.ingest(watchSpanLine(t, otlp.CellSpan{
			Sweep: "fig7", Worker: 2, Index: i, Total: 3, Workload: "mcf", Config: "plain",
			Start: w0, End: w1, Verdict: "ok", Source: "stream",
		})); err != nil {
			t.Fatal(err)
		}
	}
	out := st.render(w1)
	if !strings.Contains(out, "w2     3 cells") {
		t.Errorf("worker row did not accumulate:\n%s", out)
	}
	if strings.Count(out, "w2 ") > 1 {
		t.Errorf("duplicate worker rows:\n%s", out)
	}
}

func TestWatchStateRejectsGarbageKeepsUnknownShapes(t *testing.T) {
	st := newWatchState()
	if err := st.ingest([]byte("not json")); err == nil {
		t.Error("garbage line ingested without error")
	}
	if err := st.ingest([]byte("")); err != nil {
		t.Errorf("blank line: %v", err)
	}
	// Unknown-but-valid JSON is tolerated (forward compatibility).
	if err := st.ingest([]byte(`{"resourceLogs":[]}`)); err != nil {
		t.Errorf("unknown document kind: %v", err)
	}
	// Rendering an empty model must not panic and shows zero progress.
	if out := st.render(w1); !strings.Contains(out, "0/0 cells") {
		t.Errorf("empty dashboard: %s", out)
	}
}
