// Command restbench regenerates every table and figure of the paper's
// evaluation section (§VI), plus the §V fault-injection campaign:
//
//	restbench -fig3          ASan overhead component breakdown
//	restbench -fig7          REST vs ASan overheads, all modes and scopes
//	restbench -fig8          token-width sweep (16/32/64B)
//	restbench -table1        REST semantics conformance matrix
//	restbench -table2        simulated hardware configuration
//	restbench -table3        qualitative hardware-scheme comparison
//	restbench -stats         §VI-B microarchitectural statistics
//	restbench -faults        §V fault-injection campaign
//	restbench -all           everything
//
// Use -scale to lengthen the runs and -csv to emit machine-readable output.
//
// The experiment grids (-fig3/-fig7/-fig8, and the two -stats cells) run on
// the harness's parallel sweep engine. -j N sets the worker-pool size
// (default: GOMAXPROCS, i.e. all cores); every cell is a fully
// self-contained simulation, so the reports are guaranteed byte-identical
// at any -j — only the wall clock changes, roughly by min(j, cells, cores)
// on an otherwise idle machine. Each sweep prints its elapsed time and
// worker count to stderr, keeping stdout identical across -j values.
//
// Robustness controls:
//
//	-timeout D       wall-clock deadline for the whole invocation; cells
//	                 still running when it expires are cut loose by the
//	                 per-cell watchdog and reported as holes
//	-cell-timeout D  per-cell wall-clock watchdog
//	-cell-budget N   per-cell simulated-instruction budget (0 = sim default)
//	-keep-going      print partial reports with annotated holes and exit 0
//	                 when cells fail; without it any failed cell exits 1
//	-seed N          seed for the -faults campaign (same seed, same report)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"rest/internal/fault"
	"rest/internal/harness"
	"rest/internal/prog"
	"rest/internal/workload"
)

func main() {
	fig3 := flag.Bool("fig3", false, "regenerate Figure 3")
	fig7 := flag.Bool("fig7", false, "regenerate Figure 7")
	fig8 := flag.Bool("fig8", false, "regenerate Figure 8")
	table1 := flag.Bool("table1", false, "run the Table I conformance matrix")
	table2 := flag.Bool("table2", false, "print Table II")
	table3 := flag.Bool("table3", false, "print Table III")
	stats := flag.Bool("stats", false, "print §VI-B microarchitectural statistics")
	faults := flag.Bool("faults", false, "run the §V fault-injection campaign")
	all := flag.Bool("all", false, "run everything")
	scale := flag.Int64("scale", 5, "workload scale factor")
	statsWL := flag.String("stats-workload", "xalanc", "workload for -stats")
	csv := flag.Bool("csv", false, "also print raw cycle matrices as CSV")
	jsonOut := flag.Bool("json", false, "also print machine-readable JSON reports")
	chart := flag.Bool("chart", false, "render Figure 7/8 as ASCII bar charts")
	variants := flag.Bool("variants", false, "expand per-input variants (Figure 7's full x-axis)")
	jobs := flag.Int("j", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	failFast := flag.Bool("failfast", false, "cancel a sweep's remaining cells on the first error")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline for the whole invocation (0 = none)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell wall-clock watchdog (0 = none)")
	cellBudget := flag.Uint64("cell-budget", 0, "per-cell simulated-instruction budget (0 = sim default)")
	keepGoing := flag.Bool("keep-going", false, "report failed cells as holes and exit 0")
	seed := flag.Int64("seed", 42, "seed for the -faults campaign")
	only := flag.String("only", "", "substring filter for -faults scenarios")
	flag.Parse()

	if !(*fig3 || *fig7 || *fig8 || *table1 || *table2 || *table3 || *stats || *faults || *all) {
		flag.Usage()
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opt := harness.ParallelOptions{
		Workers:         *jobs,
		FailFast:        *failFast,
		CellTimeout:     *cellTimeout,
		CellInstrBudget: *cellBudget,
	}
	// degraded flips when a sweep came back partial under -keep-going; the
	// holes are already annotated in the printed reports, so the process
	// still exits 0 — the campaign completed, just not every cell.
	degraded := false
	// sweepErr decides what a failed sweep means: under -keep-going a
	// *MatrixError (partial result available) is downgraded to a stderr
	// notice, anything else still aborts.
	sweepErr := func(name string, err error) {
		if err == nil {
			return
		}
		var merr *harness.MatrixError
		if *keepGoing && errors.As(err, &merr) {
			degraded = true
			fmt.Fprintf(os.Stderr, "%s: %d cells failed, %d skipped; continuing with holes\n",
				name, len(merr.Cells), merr.Skipped)
			return
		}
		fail(err)
	}
	// elapsed reports each sweep's wall clock on stderr so that stdout stays
	// byte-identical across -j values (the determinism guarantee).
	elapsed := func(name string, start time.Time) {
		fmt.Fprintf(os.Stderr, "%s: elapsed %s (j=%d)\n",
			name, time.Since(start).Round(time.Millisecond), opt.EffectiveWorkers())
	}

	if *all || *table2 {
		fmt.Println(harness.RenderTableII())
	}
	if *all || *table1 {
		out, ok := harness.RunTableI()
		fmt.Println(out)
		if !ok {
			fail(fmt.Errorf("Table I conformance FAILED"))
		}
	}
	if *all || *fig3 {
		start := time.Now()
		r, err := harness.RunFig3Parallel(ctx, workload.All(), *scale, opt)
		sweepErr("fig3", err)
		elapsed("fig3", start)
		fmt.Println(r.Render())
	}
	if *all || *fig7 {
		wls := workload.All()
		if *variants {
			wls = workload.AllVariants()
		}
		start := time.Now()
		m, err := harness.RunMatrixParallel(ctx, wls, harness.Fig7Configs(), *scale, opt)
		sweepErr("fig7", err)
		elapsed("fig7", start)
		fmt.Println(m.RenderOverheadTable(
			fmt.Sprintf("Figure 7: runtime overheads over plain binaries (scale %d)", *scale)))
		fmt.Println("headline: " + m.Summary())
		fmt.Println()
		if *chart {
			fmt.Println(m.RenderBarChart("Figure 7 (bars)", 180))
		}
		if *csv {
			fmt.Println(m.CSV())
		}
		if *jsonOut {
			raw, err := m.JSON("figure7", *scale)
			if err != nil {
				fail(err)
			}
			fmt.Println(string(raw))
		}
	}
	if *all || *fig8 {
		cfgs := append(harness.Fig8Configs(),
			harness.BinaryConfig{Name: "plain", Pass: prog.Plain()})
		start := time.Now()
		m, err := harness.RunMatrixParallel(ctx, workload.All(), cfgs, *scale, opt)
		sweepErr("fig8", err)
		elapsed("fig8", start)
		fmt.Println(m.RenderOverheadTable(
			fmt.Sprintf("Figure 8: token-width overheads, secure mode (scale %d)", *scale)))
		if *csv {
			fmt.Println(m.CSV())
		}
	}
	if *all || *stats {
		wl, err := workload.ByName(*statsWL)
		if err != nil {
			fail(err)
		}
		s, err := harness.RunMicroStatsParallel(ctx, wl, *scale, opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(s.Render())
	}
	if *all || *faults {
		start := time.Now()
		c, err := fault.RunCampaign(fault.Options{Seed: *seed, Only: *only})
		if err != nil {
			fail(err)
		}
		elapsed("faults", start)
		fmt.Println(c.Render())
		if *csv {
			fmt.Println(c.CSV())
		}
		if n := c.Failures(); n > 0 {
			fail(fmt.Errorf("fault campaign: %d scenarios deviated from the paper's predicted verdicts", n))
		}
	}
	if *all || *table3 {
		fmt.Println(harness.RenderTableIII())
	}
	if degraded {
		fmt.Fprintln(os.Stderr, "some sweep cells failed; reports contain annotated holes (-keep-going)")
	}
}
