// Command restbench regenerates every table and figure of the paper's
// evaluation section (§VI), plus the §V fault-injection campaign:
//
//	restbench -fig3          ASan overhead component breakdown
//	restbench -fig7          REST vs ASan overheads, all modes and scopes
//	restbench -fig8          token-width sweep (16/32/64B)
//	restbench -fig8sens      Figure 8 timing-sensitivity sweep (ports, L2
//	                         latency, in-order core)
//	restbench -table1        REST semantics conformance matrix
//	restbench -table2        simulated hardware configuration
//	restbench -table3        qualitative hardware-scheme comparison
//	restbench -stats         §VI-B microarchitectural statistics
//	restbench -faults        §V fault-injection campaign
//	restbench -all           everything
//
// Use -scale to lengthen the runs and -csv to emit machine-readable output.
//
// The experiment grids (-fig3/-fig7/-fig8, and the two -stats cells) run on
// the harness's parallel sweep engine. -j N sets the worker-pool size
// (default: GOMAXPROCS, i.e. all cores); every cell is a fully
// self-contained simulation, so the reports are guaranteed byte-identical
// at any -j — only the wall clock changes, roughly by min(j, cells, cores)
// on an otherwise idle machine. Each sweep prints its elapsed time and
// worker count to stderr, keeping stdout identical across -j values.
//
// Robustness controls:
//
//	-timeout D       wall-clock deadline for the whole invocation; cells
//	                 still running when it expires are cut loose by the
//	                 per-cell watchdog and reported as holes
//	-cell-timeout D  per-cell wall-clock watchdog
//	-cell-budget N   per-cell simulated-instruction budget (0 = sim default)
//	-keep-going      print partial reports with annotated holes and exit 0
//	                 when cells fail; without it any failed cell exits 1
//	-seed N          seed for the -faults campaign (same seed, same report)
//
// Performance controls:
//
//	-engine E        functional simulator engine: "blocks" (decoded
//	                 basic-block cache with threaded dispatch, the
//	                 default), "ref" (the single-step reference
//	                 interpreter), or "auto" (currently blocks). Reports
//	                 are byte-identical across engines — the engine
//	                 differential tests pin that — so the flag only moves
//	                 wall-clock time
//	-trace-cache     capture each unique dynamic trace once and replay it
//	                 for sweep cells that differ only in timing knobs
//	                 (on by default; reports are byte-identical either way —
//	                 the replay differential tests pin that). Cache hit/miss
//	                 counts print to stderr after the sweeps.
//	-cache-dir DIR   persistent artifact cache: captured traces and clean
//	                 cell results are stored under DIR and reused by later
//	                 invocations, making repeated sweeps incremental.
//	                 Reports are byte-identical cold, warm or with the cache
//	                 off; a corrupt or version-skewed file silently degrades
//	                 to recompute-and-rewrite. Store activity prints to
//	                 stderr after the sweeps.
//	-cache-max-bytes N  byte cap on the cache directory; least-recently-used
//	                 entries are evicted past it (default 2 GiB)
//	-cache-rw        read-write cache mode (the default when -cache-dir is
//	                 set)
//	-cache-ro        read-only mode: reuse what is stored, write nothing
//	                 (the directory must already exist)
//	-cache-off       ignore -cache-dir for this invocation
//	-cache-chaos SPEC  inject seeded storage faults around the cache backend
//	                 (drills and tests; reports stay byte-identical because
//	                 every fault degrades to recompute). SPEC is comma-
//	                 separated key=value: seed=N, rate=F (shorthand for
//	                 err/torn/corrupt/nospace/lockstall all =F), err=F,
//	                 torn=F, corrupt=F, nospace=F, latency=F, lockstall=F,
//	                 delay=DUR. Example: seed=7,rate=0.5
//	-cache-retries N transient backend failures retried per op with
//	                 exponential backoff (default 2; 0 disables)
//	-cache-timeout D per-op wall-clock bound on cache backend operations;
//	                 a blown budget degrades to recompute (default: none;
//	                 30s with -cache-url unless set explicitly)
//
// Distributed sweeps (details in EXPERIMENTS.md): one process serves a
// cache directory, N shard processes each compute a deterministic slice of
// every grid into it, and a merge run assembles reports byte-identical to a
// single-process sweep.
//
//	-cache-serve ADDR  serve the -cache-dir artifact store to other
//	                 restbench processes over HTTP until SIGINT/SIGTERM;
//	                 takes only -cache-dir
//	-cache-url URL   use a -cache-serve server as the persistent cache
//	                 instead of a local directory; the full hardening
//	                 stack (-cache-retries/-cache-timeout/-cache-chaos,
//	                 circuit breaker, fail-open locks) applies to the
//	                 network exactly as it does to disk
//	-shard I/N       run slice I of N (1-based) of every sweep grid and
//	                 publish the artifacts to the shared store; stdout
//	                 stays empty — the -merge run renders the reports
//	-shard auto      join an elastic work-stealing pool instead of taking
//	                 a fixed slice: claim functional-identity units under
//	                 renewed leases on the shared store, publish the
//	                 artifacts, steal expired leases from killed or
//	                 stalled workers, and exit when the grid drains. Any
//	                 number of workers may join or die mid-sweep; -merge
//	                 still assembles byte-identical reports
//	-cache-stale-age D  age past which an abandoned cache lock or lease
//	                 (a crashed worker) is considered dead and stolen
//	                 (default 10m; CI drills shrink it)
//	-merge           assemble full reports from the shard artifacts in the
//	                 shared store (a plain full-grid run: complete stores
//	                 replay everything, missing cells just recompute)
//
// Observability controls (all off by default; none of them perturbs stdout,
// so reports stay byte-identical with or without them):
//
//	-metrics FILE    write the sweeps' aggregated metric registries (CSV, or
//	                 JSON when FILE ends in .json); holes are annotated rows
//	-trace FILE      write a Chrome/Catapult JSON timeline of the sweeps'
//	                 cells (one track per worker; open in chrome://tracing
//	                 or https://ui.perfetto.dev)
//	-progress        live cells-done/holes/ETA meter on stderr (with cache
//	                 hit rate once any cache tier is consulted)
//	-pprof ADDR      serve net/http/pprof and expvar on ADDR; /debug/vars
//	                 carries build identity, live sweep progress and the
//	                 latest metric snapshot under the "rest" key, and the
//	                 OTLP endpoints below are mounted on the same server
//	-serve ADDR      serve OTLP-compatible telemetry on ADDR:
//	                 GET /otlp/metrics is a live snapshot document,
//	                 GET /otlp/stream a NDJSON (or ?sse=1) feed of per-cell
//	                 spans plus periodic metric snapshots. Subscribers are
//	                 buffered and dropped-from, never blocked on, so a
//	                 stalled collector cannot slow the sweep
//	-watch ADDR      attach a live terminal dashboard to another restbench
//	                 process's -serve (or -pprof) address; takes no other
//	                 flags
//	-check-otlp FILE validate a captured OTLP dump (single document, NDJSON
//	                 or SSE framing) and exit; used by CI
//	-version         print module version + VCS revision and exit
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"rest/internal/fault"
	"rest/internal/harness"
	"rest/internal/obs"
	"rest/internal/obs/otlp"
	"rest/internal/persist"
	"rest/internal/prog"
	"rest/internal/sim"
	"rest/internal/workload"
)

// cacheFlagState is the persistent-cache flag spelling under validation,
// separated from the flag package so tests can exercise every combination.
type cacheFlagState struct {
	Dir         string
	URL         string // -cache-url (HTTP backend; mutually exclusive with Dir)
	MaxBytes    int64
	MaxBytesSet bool // -cache-max-bytes given explicitly
	RW, RO, Off bool
	TraceCache  bool   // -trace-cache (the in-memory tier the disk rides on)
	Chaos       string // -cache-chaos spec (empty = no chaos)
	Retries     int
	RetriesSet  bool // -cache-retries given explicitly
	Timeout     time.Duration
	TimeoutSet  bool // -cache-timeout given explicitly
	StaleAge    time.Duration
	StaleAgeSet bool   // -cache-stale-age given explicitly
	Shard       string // -shard spec (empty = full grid; "auto" = elastic pool)
	Merge       bool   // -merge (assemble the full grid from the shared store)
}

// cacheSetup is the validated, resolved persistent-cache configuration:
// the effective store mode, the parsed chaos spec, and the grid slice this
// process owns.
type cacheSetup struct {
	Mode    string // "rw", "ro" or "off"
	Chaos   *persist.ChaosSpec
	Shard   harness.Shard
	Elastic bool // -shard auto: work-stealing pool instead of a fixed slice
}

// validateCacheFlags rejects contradictory persistent-cache spellings with
// one actionable line each, resolves the effective mode ("rw", "ro" or
// "off"; "rw" is the default when a store is configured), and parses the
// chaos spec and shard slice if given.
func validateCacheFlags(s cacheFlagState) (cacheSetup, error) {
	var none cacheSetup
	if s.Dir != "" && s.URL != "" {
		return none, errors.New("restbench: -cache-dir and -cache-url are mutually exclusive; pass one store, not both")
	}
	store := s.Dir != "" || s.URL != ""
	n := 0
	for _, b := range []bool{s.RW, s.RO, s.Off} {
		if b {
			n++
		}
	}
	if n > 1 {
		return none, errors.New("restbench: -cache-rw, -cache-ro and -cache-off are mutually exclusive; pass at most one")
	}
	mode := "rw"
	switch {
	case s.RO:
		mode = "ro"
	case s.Off:
		mode = "off"
	}
	hardening := s.Chaos != "" || s.RetriesSet || s.TimeoutSet || s.StaleAgeSet
	if !store && (n > 0 || s.MaxBytesSet || hardening) {
		return none, errors.New("restbench: -cache-rw/-cache-ro/-cache-off/-cache-max-bytes/-cache-chaos/-cache-retries/-cache-timeout/-cache-stale-age configure the persistent cache; pass -cache-dir DIR or -cache-url URL to enable it")
	}
	if s.MaxBytesSet && s.MaxBytes <= 0 {
		return none, fmt.Errorf("restbench: -cache-max-bytes must be positive, got %d", s.MaxBytes)
	}
	if mode == "off" && hardening {
		return none, errors.New("restbench: -cache-chaos/-cache-retries/-cache-timeout/-cache-stale-age have no effect with -cache-off; drop one or the other")
	}
	if s.RetriesSet && s.Retries < 0 {
		return none, fmt.Errorf("restbench: -cache-retries must be >= 0, got %d", s.Retries)
	}
	if s.TimeoutSet && s.Timeout <= 0 {
		return none, fmt.Errorf("restbench: -cache-timeout must be positive, got %v", s.Timeout)
	}
	if s.StaleAgeSet && s.StaleAge <= 0 {
		return none, fmt.Errorf("restbench: -cache-stale-age must be positive, got %v", s.StaleAge)
	}
	setup := cacheSetup{Mode: mode}
	if s.Chaos != "" {
		var err error
		if setup.Chaos, err = persist.ParseChaosSpec(s.Chaos); err != nil {
			return none, fmt.Errorf("restbench: -cache-chaos: %v", err)
		}
	}
	if store && mode != "off" && !s.TraceCache {
		return none, errors.New("restbench: the persistent cache rides on the trace cache; drop -trace-cache=false or pass -cache-off")
	}
	if mode == "ro" && s.Dir != "" {
		fi, statErr := os.Stat(s.Dir)
		if statErr != nil || !fi.IsDir() {
			return none, fmt.Errorf("restbench: -cache-ro: cache directory %q does not exist", s.Dir)
		}
	}
	if s.Shard != "" {
		if s.Merge {
			return none, errors.New("restbench: -shard runs one slice, -merge assembles the full grid; pass one, not both")
		}
		if !store || mode != "rw" {
			return none, errors.New("restbench: -shard publishes its artifacts to the shared store; pass -cache-dir DIR or -cache-url URL in read-write mode")
		}
		if s.Shard == "auto" {
			setup.Elastic = true
		} else {
			var err error
			if setup.Shard, err = harness.ParseShard(s.Shard); err != nil {
				return none, fmt.Errorf("restbench: -shard: %v", err)
			}
		}
	}
	if s.Merge && (!store || mode == "off") {
		return none, errors.New("restbench: -merge assembles reports from the shared store; pass -cache-dir DIR or -cache-url URL")
	}
	return setup, nil
}

// validateWatchFlags enforces -watch's contract: it attaches to another
// restbench process, so combining it with any flag that configures a local
// run is a spelling mistake worth one actionable line. explicit holds the
// flag names the user actually set (flag.Visit).
func validateWatchFlags(explicit map[string]bool) error {
	if !explicit["watch"] {
		return nil
	}
	var bad []string
	for name := range explicit {
		if name != "watch" {
			bad = append(bad, "-"+name)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("restbench: -watch attaches to another restbench process and takes no other flags; drop %s",
		strings.Join(bad, ", "))
}

func main() {
	fig3 := flag.Bool("fig3", false, "regenerate Figure 3")
	fig7 := flag.Bool("fig7", false, "regenerate Figure 7")
	fig8 := flag.Bool("fig8", false, "regenerate Figure 8")
	fig8sens := flag.Bool("fig8sens", false, "run the Figure 8 timing-sensitivity sweep")
	table1 := flag.Bool("table1", false, "run the Table I conformance matrix")
	table2 := flag.Bool("table2", false, "print Table II")
	table3 := flag.Bool("table3", false, "print Table III")
	stats := flag.Bool("stats", false, "print §VI-B microarchitectural statistics")
	faults := flag.Bool("faults", false, "run the §V fault-injection campaign")
	all := flag.Bool("all", false, "run everything")
	scale := flag.Int64("scale", 5, "workload scale factor")
	statsWL := flag.String("stats-workload", "xalanc", "workload for -stats")
	csv := flag.Bool("csv", false, "also print raw cycle matrices as CSV")
	jsonOut := flag.Bool("json", false, "also print machine-readable JSON reports")
	chart := flag.Bool("chart", false, "render Figure 7/8 as ASCII bar charts")
	variants := flag.Bool("variants", false, "expand per-input variants (Figure 7's full x-axis)")
	jobs := flag.Int("j", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	failFast := flag.Bool("failfast", false, "cancel a sweep's remaining cells on the first error")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline for the whole invocation (0 = none)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell wall-clock watchdog (0 = none)")
	cellBudget := flag.Uint64("cell-budget", 0, "per-cell simulated-instruction budget (0 = sim default)")
	keepGoing := flag.Bool("keep-going", false, "report failed cells as holes and exit 0")
	engineName := flag.String("engine", "auto", "functional simulator engine: blocks (default), ref, auto")
	traceCache := flag.Bool("trace-cache", true, "capture/replay dynamic traces across timing-only config variants")
	cacheDir := flag.String("cache-dir", "", "persistent artifact cache directory (empty = no persistent cache)")
	cacheURL := flag.String("cache-url", "", "shared artifact cache server URL (see -cache-serve; mutually exclusive with -cache-dir)")
	cacheServe := flag.String("cache-serve", "", "serve the -cache-dir artifact store to other restbench processes on this address and exit on SIGINT/SIGTERM")
	shardSpec := flag.String("shard", "", "run slice i/n of every sweep grid (1-based, e.g. 2/4), or \"auto\" to join an elastic work-stealing pool; requires a read-write shared store, suppresses stdout reports")
	merge := flag.Bool("merge", false, "assemble full reports from shard artifacts in the shared store (a plain full-grid run; cells recompute only if missing)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", persist.DefaultMaxBytes, "byte cap on the persistent cache (LRU eviction past it)")
	cacheRW := flag.Bool("cache-rw", false, "persistent cache in read-write mode (default when -cache-dir is set)")
	cacheRO := flag.Bool("cache-ro", false, "persistent cache in read-only mode (directory must exist)")
	cacheOff := flag.Bool("cache-off", false, "ignore -cache-dir for this invocation")
	cacheChaos := flag.String("cache-chaos", "", "inject storage faults: comma-separated spec, e.g. seed=7,rate=0.5 or err=0.1,torn=0.05,delay=5ms (drill/testing)")
	cacheRetries := flag.Int("cache-retries", persist.DefaultRetries, "transient cache backend failures retried per op (0 = no retries)")
	cacheTimeout := flag.Duration("cache-timeout", 0, "per-op wall-clock bound on cache backend operations (0 = none)")
	cacheStaleAge := flag.Duration("cache-stale-age", 0, "age past which an abandoned cache lock or lease is considered dead and stolen (0 = default, 10m)")
	seed := flag.Int64("seed", 42, "seed for the -faults campaign")
	only := flag.String("only", "", "substring filter for -faults scenarios")
	metricsOut := flag.String("metrics", "", "write sweep metrics to this file (CSV, or JSON if it ends in .json)")
	traceOut := flag.String("trace", "", "write a Chrome/Catapult JSON trace of the sweeps to this file")
	progress := flag.Bool("progress", false, "live cells-done/holes/ETA meter on stderr")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof + expvar on this address (e.g. localhost:6060)")
	serveAddr := flag.String("serve", "", "serve OTLP telemetry (/otlp/metrics, /otlp/stream) on this address (e.g. localhost:7788)")
	watchAddr := flag.String("watch", "", "attach a live dashboard to another restbench's -serve/-pprof address and exit with it")
	checkOTLP := flag.String("check-otlp", "", "validate an OTLP dump file (document, NDJSON or SSE) and exit")
	version := flag.Bool("version", false, "print build/version information and exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.ReadBuild())
		return
	}
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *checkOTLP != "" {
		raw, err := os.ReadFile(*checkOTLP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "restbench: -check-otlp: "+err.Error())
			os.Exit(1)
		}
		n, err := otlp.ValidateDump(raw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "restbench: -check-otlp %s: %v\n", *checkOTLP, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d valid OTLP document(s)\n", *checkOTLP, n)
		return
	}
	if err := validateWatchFlags(explicit); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *watchAddr != "" {
		if err := runWatch(*watchAddr, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := validateCacheServeFlags(explicit); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *cacheServe != "" {
		if err := runCacheServe(*cacheServe, *cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	// Validate the cache flag combinations up front, before any sweep: a
	// contradictory spelling fails in one line here, not minutes into a run.
	setup, cerr := validateCacheFlags(cacheFlagState{
		Dir:         *cacheDir,
		URL:         *cacheURL,
		MaxBytes:    *cacheMaxBytes,
		MaxBytesSet: explicit["cache-max-bytes"],
		RW:          *cacheRW,
		RO:          *cacheRO,
		Off:         *cacheOff,
		TraceCache:  *traceCache,
		Chaos:       *cacheChaos,
		Retries:     *cacheRetries,
		RetriesSet:  explicit["cache-retries"],
		Timeout:     *cacheTimeout,
		TimeoutSet:  explicit["cache-timeout"],
		StaleAge:    *cacheStaleAge,
		StaleAgeSet: explicit["cache-stale-age"],
		Shard:       *shardSpec,
		Merge:       *merge,
	})
	if cerr != nil {
		fmt.Fprintln(os.Stderr, cerr)
		os.Exit(2)
	}
	cacheMode, chaosSpec := setup.Mode, setup.Chaos
	// A sharded (or elastic) process computes its share and publishes
	// artifacts; the reports it could render would be partial, so stdout
	// stays empty and a later -merge run assembles the real ones from the
	// shared store.
	shardMode := setup.Shard.Enabled()
	elasticMode := setup.Elastic
	workerMode := shardMode || elasticMode
	engine, eerr := sim.ParseEngine(*engineName)
	if eerr != nil {
		fmt.Fprintln(os.Stderr, "restbench: "+eerr.Error())
		os.Exit(2)
	}
	if !(*fig3 || *fig7 || *fig8 || *fig8sens || *table1 || *table2 || *table3 || *stats || *faults || *all) {
		flag.Usage()
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// A typo'd -only fails here, before any sweep runs, with the list of
	// valid scenario names — not after minutes of unrelated figures.
	if *faults || *all {
		if err := fault.ValidateOnly(*only); err != nil {
			fail(err)
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opt := harness.ParallelOptions{
		Workers:         *jobs,
		FailFast:        *failFast,
		CellTimeout:     *cellTimeout,
		CellInstrBudget: *cellBudget,
		Engine:          engine,
		Shard:           setup.Shard,
		Elastic:         setup.Elastic,
	}
	// One cache for the whole invocation: grids that share functional
	// identities across sweeps (e.g. -fig8 and -fig8sens both time the
	// secure-full build) reuse each other's captures.
	var tcache *harness.TraceCache
	if *traceCache {
		tcache = harness.NewTraceCache()
		opt.TraceCache = tcache
	}
	// The persistent tier extends those captures — and memoized clean cell
	// results — across invocations (and, over -cache-url, across processes
	// and machines sharing one -cache-serve store).
	var pcache *persist.Cache
	if (*cacheDir != "" || *cacheURL != "") && cacheMode != "off" {
		popt := persist.Options{
			MaxBytes:     *cacheMaxBytes,
			ReadOnly:     cacheMode == "ro",
			Chaos:        chaosSpec,
			Retries:      *cacheRetries,
			OpTimeout:    *cacheTimeout,
			StaleLockAge: *cacheStaleAge,
		}
		if *cacheRetries == 0 {
			popt.Retries = -1 // flag 0 means "no retries", not "library default"
		}
		var err error
		if *cacheURL != "" {
			// A remote store adds network stalls the local default never
			// sees: bound every op unless the user chose their own budget.
			if !explicit["cache-timeout"] {
				popt.OpTimeout = 30 * time.Second
			}
			// A short -cache-stale-age (fast recovery from killed
			// workers) only works if live holders renew their leases
			// well inside that window; tie the renew period to it.
			hopt := persist.HTTPOptions{}
			if *cacheStaleAge > 0 && *cacheStaleAge/4 < persist.DefaultLockRenew {
				hopt.RenewEvery = *cacheStaleAge / 4
			}
			var hb *persist.HTTPBackend
			if hb, err = persist.NewHTTPBackend(*cacheURL, hopt); err == nil {
				pcache, err = persist.OpenBackend(hb, popt)
			}
		} else {
			pcache, err = persist.Open(*cacheDir, popt)
		}
		if err != nil {
			fail(err)
		}
		tcache.AttachDisk(pcache)
		if chaosSpec != nil {
			fmt.Fprintf(os.Stderr, "disk cache: chaos injection active (%s)\n", chaosSpec)
		}
	}

	// The observability plane. All of it writes to files or stderr, never
	// stdout, so enabling any of these flags cannot perturb the reports. One
	// TelemetryExporter backs every surface (expvar, /otlp/metrics,
	// /otlp/stream, the progress meter's cache field); its span stream is
	// only attached to sweeps when an HTTP surface actually exists.
	tel := harness.NewTelemetryExporter("restbench", tcache)
	tel.Shard = setup.Shard
	serving := *pprofAddr != "" || *serveAddr != ""
	live := tel.Live
	if *pprofAddr != "" {
		expvar.Publish("rest", expvar.Func(live.Vars))
		tel.Source().Register(http.DefaultServeMux)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "serving http://%s/debug/pprof/, /debug/vars and /otlp/{metrics,stream}\n", *pprofAddr)
	}
	if *serveAddr != "" {
		resolved, err := startTelemetryServer(*serveAddr, tel)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "serving http://%s/otlp/metrics and /otlp/stream (attach with: restbench -watch %s)\n",
			resolved, resolved)
	}
	var tracer *obs.Trace
	if *traceOut != "" {
		tracer = obs.NewTrace()
	}
	var reports []*harness.MetricsReport
	// sweepOpt clones the sweep options for one named sweep, attaching the
	// requested observability surfaces to its cell-event stream; the returned
	// finish hook harvests the sweep's metrics report once its matrix exists.
	sweepOpt := func(name string, cells int) (harness.ParallelOptions, func(*harness.Matrix)) {
		o := opt
		o.Metrics = *metricsOut != ""
		// In shard mode the meter, the live gauges and the stderr note all
		// describe the work this shard actually owns — a count only the sweep
		// planner knows (the partition unit is the functional identity, not
		// the cell), so they are wired up from its OnPlan report instead of
		// the full grid size.
		var meter *obs.Progress
		startMeter := func(cells int) {
			if *progress {
				meter = obs.NewProgress(os.Stderr, name, cells)
				meter.SetStats(tel.ProgressStats)
			}
			tel.AddSweep(name, cells)
		}
		if shardMode {
			o.OnPlan = func(owned, total int) {
				note := ""
				if owned == 0 {
					note = " (empty shard)"
				}
				fmt.Fprintf(os.Stderr, "%s: shard %s owns %d of %d cells%s\n",
					name, setup.Shard, owned, total, note)
				startMeter(owned)
			}
		} else {
			startMeter(cells)
		}
		if elasticMode {
			// The elastic summary is the worker's only account of the pool
			// dynamics: how many units it claimed (and how many of those were
			// steals from dead peers), how many it published, and how many it
			// abandoned to a livelier thief. CI greps the "elastic pool:"
			// prefix.
			o.OnElastic = func(st harness.ElasticStats) {
				fmt.Fprintf(os.Stderr,
					"%s: elastic pool: claimed %d of %d units (%d stolen), %d done, %d already published, %d lease-lost, %d cells computed, %d drain waits\n",
					name, st.Claimed, st.Units, st.Steals, st.Done, st.Skipped, st.LeaseLost, st.CellsRun, st.DrainWaits)
			}
		}
		var telOn func(harness.CellEvent)
		if serving {
			telOn = tel.OnCell(name)
		}
		// Merge provenance: count how much of the grid the shared store
		// served so the stderr summary can say whether the shards' work was
		// actually reused. Atomics — cells finish on concurrent workers.
		var fromStore, computed atomic.Uint64
		if *traceOut != "" || *progress || serving || *merge {
			o.OnCell = func(ev harness.CellEvent) {
				ok := ev.Err == nil && !ev.Skipped
				meter.Observe(ok)
				if telOn != nil {
					telOn(ev)
				}
				if *merge && ok {
					if ev.Source == "result-store" || ev.Source == "disk-replay" {
						fromStore.Add(1)
					} else {
						computed.Add(1)
					}
				}
				verdict := "ok"
				switch {
				case ev.Skipped:
					verdict = "skipped"
				case ev.Err != nil:
					verdict = "hole"
				}
				tracer.Slice(ev.Worker, ev.Workload+"/"+ev.Config, name, ev.Start, ev.End,
					map[string]any{
						"workload": ev.Workload, "config": ev.Config,
						"verdict": verdict, "instrs": ev.Instrs, "cycles": ev.Cycles,
					})
			}
		}
		total := cells
		return o, func(m *harness.Matrix) {
			meter.Finish()
			if *merge {
				fmt.Fprintf(os.Stderr, "%s: merge served %d of %d cells from the shared cache (%d recomputed)\n",
					name, fromStore.Load(), total, computed.Load())
			}
			if m == nil || !o.Metrics {
				return
			}
			if rep := m.Metrics(name); rep != nil {
				reports = append(reports, rep)
				live.SetMetrics(m.Obs.Snapshot())
			}
		}
	}
	// degraded flips when a sweep came back partial under -keep-going; the
	// holes are already annotated in the printed reports, so the process
	// still exits 0 — the campaign completed, just not every cell.
	degraded := false
	// sweepErr decides what a failed sweep means: under -keep-going a
	// *MatrixError (partial result available) is downgraded to a stderr
	// notice, anything else still aborts.
	sweepErr := func(name string, err error) {
		if err == nil {
			return
		}
		var merr *harness.MatrixError
		if *keepGoing && errors.As(err, &merr) {
			degraded = true
			fmt.Fprintf(os.Stderr, "%s: %d cells failed, %d skipped; continuing with holes\n",
				name, len(merr.Cells), merr.Skipped)
			return
		}
		fail(err)
	}
	// elapsed reports each sweep's wall clock on stderr so that stdout stays
	// byte-identical across -j values (the determinism guarantee).
	elapsed := func(name string, start time.Time) {
		fmt.Fprintf(os.Stderr, "%s: elapsed %s (j=%d)\n",
			name, time.Since(start).Round(time.Millisecond), opt.EffectiveWorkers())
	}
	// report prints one finished report to stdout — except in shard mode,
	// where this process's view of the grid is partial by construction, so
	// stdout stays empty and the -merge run renders the real reports.
	report := func(s string) {
		if !workerMode {
			fmt.Println(s)
		}
	}
	// Tables, -stats and -faults are not sweep grids: a shard or elastic
	// worker owns no slice of them, so they run (and print) only in full or
	// -merge invocations.
	if workerMode && (*all || *table1 || *table2 || *table3 || *stats || *faults) {
		fmt.Fprintln(os.Stderr, "shard mode computes sweep-grid slices only; tables, -stats and -faults are left to the -merge run")
	}

	if (*all || *table2) && !workerMode {
		fmt.Println(harness.RenderTableII())
	}
	if (*all || *table1) && !workerMode {
		out, ok := harness.RunTableI()
		fmt.Println(out)
		if !ok {
			fail(fmt.Errorf("Table I conformance FAILED"))
		}
	}
	if *all || *fig3 {
		start := time.Now()
		o, finish := sweepOpt("fig3", len(workload.All())*(len(harness.Fig3Components)+1))
		r, err := harness.RunFig3Parallel(ctx, workload.All(), *scale, o)
		sweepErr("fig3", err)
		finish(r.Matrix)
		elapsed("fig3", start)
		report(r.Render())
	}
	if *all || *fig7 {
		wls := workload.All()
		if *variants {
			wls = workload.AllVariants()
		}
		start := time.Now()
		o, finish := sweepOpt("fig7", len(wls)*len(harness.Fig7Configs()))
		m, err := harness.RunMatrixParallel(ctx, wls, harness.Fig7Configs(), *scale, o)
		sweepErr("fig7", err)
		finish(m)
		elapsed("fig7", start)
		report(m.RenderOverheadTable(
			fmt.Sprintf("Figure 7: runtime overheads over plain binaries (scale %d)", *scale)))
		report("headline: " + m.Summary())
		report("")
		if *chart {
			report(m.RenderBarChart("Figure 7 (bars)", 180))
		}
		if *csv {
			report(m.CSV())
		}
		if *jsonOut {
			raw, err := m.JSON("figure7", *scale)
			if err != nil {
				fail(err)
			}
			report(string(raw))
		}
	}
	if *all || *fig8 {
		cfgs := append(harness.Fig8Configs(),
			harness.BinaryConfig{Name: "plain", Pass: prog.Plain()})
		start := time.Now()
		o, finish := sweepOpt("fig8", len(workload.All())*len(cfgs))
		m, err := harness.RunMatrixParallel(ctx, workload.All(), cfgs, *scale, o)
		sweepErr("fig8", err)
		finish(m)
		elapsed("fig8", start)
		report(m.RenderOverheadTable(
			fmt.Sprintf("Figure 8: token-width overheads, secure mode (scale %d)", *scale)))
		if *csv {
			report(m.CSV())
		}
	}
	if *all || *fig8sens {
		start := time.Now()
		o, finish := sweepOpt("fig8sens", len(workload.All())*len(harness.Fig8SensitivityConfigs()))
		m, err := harness.RunFig8Sensitivity(ctx, workload.All(), *scale, o)
		sweepErr("fig8sens", err)
		finish(m)
		elapsed("fig8sens", start)
		report(m.RenderOverheadTable(
			fmt.Sprintf("Figure 8 sensitivity: overheads under timing variants (scale %d)", *scale)))
		if *csv {
			report(m.CSV())
		}
	}
	if (*all || *stats) && !workerMode {
		wl, err := workload.ByName(*statsWL)
		if err != nil {
			fail(err)
		}
		o, finish := sweepOpt("micro", 2)
		s, err := harness.RunMicroStatsParallel(ctx, wl, *scale, o)
		if err != nil {
			fail(err)
		}
		finish(s.Matrix)
		fmt.Println(s.Render())
	}
	if (*all || *faults) && !workerMode {
		start := time.Now()
		c, err := fault.RunCampaign(fault.Options{Seed: *seed, Only: *only, Engine: engine})
		if err != nil {
			fail(err)
		}
		elapsed("faults", start)
		if *metricsOut != "" {
			reg := obs.NewRegistry()
			c.FlushObs(reg)
			reports = append(reports, &harness.MetricsReport{
				Sweep: "faults", Aggregate: reg.Snapshot(),
			})
		}
		fmt.Println(c.Render())
		if *csv {
			fmt.Println(c.CSV())
		}
		if n := c.Failures(); n > 0 {
			fail(fmt.Errorf("fault campaign: %d scenarios deviated from the paper's predicted verdicts", n))
		}
	}
	if (*all || *table3) && !workerMode {
		fmt.Println(harness.RenderTableIII())
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, reports); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "metrics: wrote %d report(s) to %s\n", len(reports), *metricsOut)
	}
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if _, err := tracer.WriteTo(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
	}
	if tcache != nil {
		hits, misses, bypass := tcache.Counters()
		fmt.Fprintf(os.Stderr, "trace cache: %d replayed, %d captured, %d bypassed\n", hits, misses, bypass)
	}
	if pcache != nil {
		c := pcache.Counters()
		fmt.Fprintf(os.Stderr,
			"disk cache: trace store %d hits / %d misses, result store %d hits / %d misses, %d stored, %d evicted, %d corrupt, %d bytes resident\n",
			c.TraceHits, c.TraceMisses, c.ResultHits, c.ResultMisses,
			c.Stores, c.Evictions, c.Corruptions, c.Bytes)
		if s := pcache.StackCounters(); c.Unavailable > 0 || s.Retries > 0 || s.BreakerTrips > 0 ||
			s.Timeouts > 0 || s.ChaosErrs+s.ChaosTorn+s.ChaosCorrupt+s.ChaosNoSpace > 0 {
			fmt.Fprintf(os.Stderr,
				"disk cache: %d ops degraded to recompute, %d retries (%d gave up), %d timeouts, breaker %d trips / %d fast-fails / %d recoveries, chaos injected %d errs / %d torn / %d corrupt / %d nospace\n",
				c.Unavailable, s.Retries, s.RetryGiveups, s.Timeouts,
				s.BreakerTrips, s.BreakerRejects, s.BreakerRecoveries,
				s.ChaosErrs, s.ChaosTorn, s.ChaosCorrupt, s.ChaosNoSpace)
		}
		// The cross-process coordination plane only speaks up when another
		// process was actually there: contended capture locks, and time
		// spent waiting out other leaders.
		if c.LockContended > 0 || c.LockWaits > 0 {
			fmt.Fprintf(os.Stderr, "disk cache: lock plane %d contended acquires, %d waits (%s waiting)\n",
				c.LockContended, c.LockWaits, time.Duration(c.LockWaitNs).Round(time.Millisecond))
		}
		if hc, ok := pcache.HTTPCounters(); ok {
			fmt.Fprintf(os.Stderr,
				"http cache: %d gets (%d coalesced, %s saved) / %d puts / %d lists, %d lock ops (%d renews), %d transport errors, %d B in / %d B out\n",
				hc.Gets, hc.Coalesced, time.Duration(hc.CoalescedWaitNs).Round(time.Millisecond),
				hc.Puts, hc.Lists, hc.LockOps, hc.Renews, hc.TransportErrs, hc.BytesIn, hc.BytesOut)
		}
		if err := pcache.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "disk cache: %v\n", err)
		}
	}
	if degraded {
		fmt.Fprintln(os.Stderr, "some sweep cells failed; reports contain annotated holes (-keep-going)")
	}
}

// writeMetrics renders the collected sweep reports to path: an indented JSON
// array when the path ends in .json, otherwise CSV with one shared header.
func writeMetrics(path string, reports []*harness.MetricsReport) error {
	var out []byte
	if strings.HasSuffix(path, ".json") {
		raw, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		out = append(raw, '\n')
	} else {
		var b strings.Builder
		for i, r := range reports {
			csv := r.CSV()
			if i > 0 {
				// One header for the whole file; every row already carries
				// its sweep name in column one.
				if idx := strings.IndexByte(csv, '\n'); idx >= 0 {
					csv = csv[idx+1:]
				}
			}
			b.WriteString(csv)
		}
		out = []byte(b.String())
	}
	return os.WriteFile(path, out, 0o644)
}
