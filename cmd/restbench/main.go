// Command restbench regenerates every table and figure of the paper's
// evaluation section (§VI):
//
//	restbench -fig3          ASan overhead component breakdown
//	restbench -fig7          REST vs ASan overheads, all modes and scopes
//	restbench -fig8          token-width sweep (16/32/64B)
//	restbench -table1        REST semantics conformance matrix
//	restbench -table2        simulated hardware configuration
//	restbench -table3        qualitative hardware-scheme comparison
//	restbench -stats         §VI-B microarchitectural statistics
//	restbench -all           everything
//
// Use -scale to lengthen the runs and -csv to emit machine-readable output.
//
// The experiment grids (-fig3/-fig7/-fig8, and the two -stats cells) run on
// the harness's parallel sweep engine. -j N sets the worker-pool size
// (default: GOMAXPROCS, i.e. all cores); every cell is a fully
// self-contained simulation, so the reports are guaranteed byte-identical
// at any -j — only the wall clock changes, roughly by min(j, cells, cores)
// on an otherwise idle machine. Each sweep prints its elapsed time and
// worker count to stderr, keeping stdout identical across -j values.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"rest/internal/harness"
	"rest/internal/prog"
	"rest/internal/workload"
)

func main() {
	fig3 := flag.Bool("fig3", false, "regenerate Figure 3")
	fig7 := flag.Bool("fig7", false, "regenerate Figure 7")
	fig8 := flag.Bool("fig8", false, "regenerate Figure 8")
	table1 := flag.Bool("table1", false, "run the Table I conformance matrix")
	table2 := flag.Bool("table2", false, "print Table II")
	table3 := flag.Bool("table3", false, "print Table III")
	stats := flag.Bool("stats", false, "print §VI-B microarchitectural statistics")
	all := flag.Bool("all", false, "run everything")
	scale := flag.Int64("scale", 5, "workload scale factor")
	statsWL := flag.String("stats-workload", "xalanc", "workload for -stats")
	csv := flag.Bool("csv", false, "also print raw cycle matrices as CSV")
	jsonOut := flag.Bool("json", false, "also print machine-readable JSON reports")
	chart := flag.Bool("chart", false, "render Figure 7/8 as ASCII bar charts")
	variants := flag.Bool("variants", false, "expand per-input variants (Figure 7's full x-axis)")
	jobs := flag.Int("j", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	failFast := flag.Bool("failfast", false, "cancel a sweep's remaining cells on the first error")
	flag.Parse()

	if !(*fig3 || *fig7 || *fig8 || *table1 || *table2 || *table3 || *stats || *all) {
		flag.Usage()
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctx := context.Background()
	opt := harness.ParallelOptions{Workers: *jobs, FailFast: *failFast}
	// elapsed reports each sweep's wall clock on stderr so that stdout stays
	// byte-identical across -j values (the determinism guarantee).
	elapsed := func(name string, start time.Time) {
		fmt.Fprintf(os.Stderr, "%s: elapsed %s (j=%d)\n",
			name, time.Since(start).Round(time.Millisecond), opt.EffectiveWorkers())
	}

	if *all || *table2 {
		fmt.Println(harness.RenderTableII())
	}
	if *all || *table1 {
		out, ok := harness.RunTableI()
		fmt.Println(out)
		if !ok {
			fail(fmt.Errorf("Table I conformance FAILED"))
		}
	}
	if *all || *fig3 {
		start := time.Now()
		r, err := harness.RunFig3Parallel(ctx, workload.All(), *scale, opt)
		if err != nil {
			fail(err)
		}
		elapsed("fig3", start)
		fmt.Println(r.Render())
	}
	if *all || *fig7 {
		wls := workload.All()
		if *variants {
			wls = workload.AllVariants()
		}
		start := time.Now()
		m, err := harness.RunMatrixParallel(ctx, wls, harness.Fig7Configs(), *scale, opt)
		if err != nil {
			fail(err)
		}
		elapsed("fig7", start)
		fmt.Println(m.RenderOverheadTable(
			fmt.Sprintf("Figure 7: runtime overheads over plain binaries (scale %d)", *scale)))
		fmt.Println("headline: " + m.Summary())
		fmt.Println()
		if *chart {
			fmt.Println(m.RenderBarChart("Figure 7 (bars)", 180))
		}
		if *csv {
			fmt.Println(m.CSV())
		}
		if *jsonOut {
			raw, err := m.JSON("figure7", *scale)
			if err != nil {
				fail(err)
			}
			fmt.Println(string(raw))
		}
	}
	if *all || *fig8 {
		cfgs := append(harness.Fig8Configs(),
			harness.BinaryConfig{Name: "plain", Pass: prog.Plain()})
		start := time.Now()
		m, err := harness.RunMatrixParallel(ctx, workload.All(), cfgs, *scale, opt)
		if err != nil {
			fail(err)
		}
		elapsed("fig8", start)
		fmt.Println(m.RenderOverheadTable(
			fmt.Sprintf("Figure 8: token-width overheads, secure mode (scale %d)", *scale)))
		if *csv {
			fmt.Println(m.CSV())
		}
	}
	if *all || *stats {
		wl, err := workload.ByName(*statsWL)
		if err != nil {
			fail(err)
		}
		s, err := harness.RunMicroStatsParallel(ctx, wl, *scale, opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(s.Render())
	}
	if *all || *table3 {
		fmt.Println(harness.RenderTableIII())
	}
}
