// Command restbench regenerates every table and figure of the paper's
// evaluation section (§VI):
//
//	restbench -fig3          ASan overhead component breakdown
//	restbench -fig7          REST vs ASan overheads, all modes and scopes
//	restbench -fig8          token-width sweep (16/32/64B)
//	restbench -table1        REST semantics conformance matrix
//	restbench -table2        simulated hardware configuration
//	restbench -table3        qualitative hardware-scheme comparison
//	restbench -stats         §VI-B microarchitectural statistics
//	restbench -all           everything
//
// Use -scale to lengthen the runs and -csv to emit machine-readable output.
package main

import (
	"flag"
	"fmt"
	"os"

	"rest/internal/harness"
	"rest/internal/prog"
	"rest/internal/workload"
)

func main() {
	fig3 := flag.Bool("fig3", false, "regenerate Figure 3")
	fig7 := flag.Bool("fig7", false, "regenerate Figure 7")
	fig8 := flag.Bool("fig8", false, "regenerate Figure 8")
	table1 := flag.Bool("table1", false, "run the Table I conformance matrix")
	table2 := flag.Bool("table2", false, "print Table II")
	table3 := flag.Bool("table3", false, "print Table III")
	stats := flag.Bool("stats", false, "print §VI-B microarchitectural statistics")
	all := flag.Bool("all", false, "run everything")
	scale := flag.Int64("scale", 5, "workload scale factor")
	statsWL := flag.String("stats-workload", "xalanc", "workload for -stats")
	csv := flag.Bool("csv", false, "also print raw cycle matrices as CSV")
	jsonOut := flag.Bool("json", false, "also print machine-readable JSON reports")
	chart := flag.Bool("chart", false, "render Figure 7/8 as ASCII bar charts")
	variants := flag.Bool("variants", false, "expand per-input variants (Figure 7's full x-axis)")
	flag.Parse()

	if !(*fig3 || *fig7 || *fig8 || *table1 || *table2 || *table3 || *stats || *all) {
		flag.Usage()
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *all || *table2 {
		fmt.Println(harness.RenderTableII())
	}
	if *all || *table1 {
		out, ok := harness.RunTableI()
		fmt.Println(out)
		if !ok {
			fail(fmt.Errorf("Table I conformance FAILED"))
		}
	}
	if *all || *fig3 {
		r, err := harness.RunFig3(workload.All(), *scale)
		if err != nil {
			fail(err)
		}
		fmt.Println(r.Render())
	}
	if *all || *fig7 {
		wls := workload.All()
		if *variants {
			wls = workload.AllVariants()
		}
		m, err := harness.RunMatrix(wls, harness.Fig7Configs(), *scale)
		if err != nil {
			fail(err)
		}
		fmt.Println(m.RenderOverheadTable(
			fmt.Sprintf("Figure 7: runtime overheads over plain binaries (scale %d)", *scale)))
		fmt.Println("headline: " + m.Summary())
		fmt.Println()
		if *chart {
			fmt.Println(m.RenderBarChart("Figure 7 (bars)", 180))
		}
		if *csv {
			fmt.Println(m.CSV())
		}
		if *jsonOut {
			raw, err := m.JSON("figure7", *scale)
			if err != nil {
				fail(err)
			}
			fmt.Println(string(raw))
		}
	}
	if *all || *fig8 {
		cfgs := append(harness.Fig8Configs(),
			harness.BinaryConfig{Name: "plain", Pass: prog.Plain()})
		m, err := harness.RunMatrix(workload.All(), cfgs, *scale)
		if err != nil {
			fail(err)
		}
		fmt.Println(m.RenderOverheadTable(
			fmt.Sprintf("Figure 8: token-width overheads, secure mode (scale %d)", *scale)))
		if *csv {
			fmt.Println(m.CSV())
		}
	}
	if *all || *stats {
		wl, err := workload.ByName(*statsWL)
		if err != nil {
			fail(err)
		}
		s, err := harness.RunMicroStats(wl, *scale)
		if err != nil {
			fail(err)
		}
		fmt.Println(s.Render())
	}
	if *all || *table3 {
		fmt.Println(harness.RenderTableIII())
	}
}
