// The -cache-serve surface: a standalone artifact-cache server. Sharded
// restbench processes on other machines (or just other PIDs) point
// -cache-url at it and share one store: captured traces, memoized cell
// results and the cross-process capture locks all live behind the wire
// protocol that internal/persist's CacheServer and HTTPBackend speak.
//
// The server is deliberately dumb — it serves whatever persist.Backend it
// wraps (here a DirBackend) and keeps the advisory lock leases; all cache
// policy (admission, eviction, integrity, retry) stays in the clients, so a
// server restart loses nothing but in-flight leases, and even those degrade
// to the lock files' mtime-based recovery.
package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"rest/internal/persist"
)

// validateCacheServeFlags enforces -cache-serve's contract: it turns the
// process into a cache server for other restbench invocations, so the only
// flag that may accompany it is -cache-dir (the directory to serve, and it
// is required). explicit holds the flag names the user actually set.
func validateCacheServeFlags(explicit map[string]bool) error {
	if !explicit["cache-serve"] {
		return nil
	}
	if !explicit["cache-dir"] {
		return fmt.Errorf("restbench: -cache-serve needs -cache-dir DIR (the artifact store to serve)")
	}
	var bad []string
	for name := range explicit {
		if name != "cache-serve" && name != "cache-dir" {
			bad = append(bad, "-"+name)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("restbench: -cache-serve runs a cache server for other restbench processes and takes only -cache-dir; drop %s",
		strings.Join(bad, ", "))
}

// runCacheServe binds addr and serves the artifact store under dir until
// SIGINT/SIGTERM. The resolved address (usable even for ":0" specs) and an
// attach hint print to stderr; stdout stays empty, matching every other
// restbench mode's "reports only" contract.
func runCacheServe(addr, dir string) error {
	b, err := persist.NewDirBackend(dir, false)
	if err != nil {
		return fmt.Errorf("restbench: -cache-serve: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("restbench: -cache-serve %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	persist.NewCacheServer(b).Register(mux)
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "cache-serve: %v\n", err)
		}
	}()
	resolved := ln.Addr().String()
	fmt.Fprintf(os.Stderr, "serving artifact cache %s on http://%s/cache/v1/ (attach with: restbench -cache-url http://%s ...)\n",
		dir, resolved, resolved)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	sig := <-stop
	fmt.Fprintf(os.Stderr, "cache-serve: %s, shutting down\n", sig)
	ln.Close()
	return nil
}
